// Package hasse builds the Hasse diagrams over the CC containment partial
// order used by Algorithm 2: nodes are CCs, edges are covering containment
// relations, and each connected component ("diagram" in the paper's
// terminology) is processed bottom-up from its maximal element.
package hasse

import (
	"sort"

	"repro/internal/constraint"
)

// Diagram is one connected component of the containment order.
type Diagram struct {
	// Nodes lists the CC indices in this component, ascending.
	Nodes []int
	// Maximal lists the nodes not contained in any other node of the
	// component. A well-formed diagram for Algorithm 2 has exactly one, but
	// degenerate inputs can produce several; the hybrid routes such
	// components to the ILP.
	Maximal []int
}

// Forest is the set of diagrams plus the covering relation.
type Forest struct {
	// Children[i] lists the CCs covered by i (directly contained, no CC in
	// between), ascending.
	Children [][]int
	// Parents[i] lists the CCs covering i.
	Parents  [][]int
	Diagrams []Diagram
}

// Build constructs the forest from a pairwise relationship matrix (as
// produced by constraint.ClassifyAll). Only containment relations
// contribute edges; RelEqual pairs are linked as a containment in index
// order so that duplicated CCs stay in one diagram instead of looping.
func Build(rel [][]constraint.Relationship) *Forest {
	n := len(rel)
	// contains[i][j] == true means j ⊆ i strictly (or equal with i < j).
	contains := make([][]bool, n)
	for i := range contains {
		contains[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			switch rel[i][j] {
			case constraint.RelAContainsB:
				contains[i][j] = true
			case constraint.RelEqual:
				if i < j {
					contains[i][j] = true
				}
			}
		}
	}
	f := &Forest{Children: make([][]int, n), Parents: make([][]int, n)}
	// Covering relation: i covers j iff i ⊇ j and no k with i ⊇ k ⊇ j.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !contains[i][j] {
				continue
			}
			covered := true
			for k := 0; k < n && covered; k++ {
				if k != i && k != j && contains[i][k] && contains[k][j] {
					covered = false
				}
			}
			if covered {
				f.Children[i] = append(f.Children[i], j)
				f.Parents[j] = append(f.Parents[j], i)
			}
		}
	}
	// Connected components over the undirected covering graph.
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	nc := 0
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		stack := []int{i}
		comp[i] = nc
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range append(append([]int(nil), f.Children[v]...), f.Parents[v]...) {
				if comp[u] < 0 {
					comp[u] = nc
					stack = append(stack, u)
				}
			}
		}
		nc++
	}
	f.Diagrams = make([]Diagram, nc)
	for i := 0; i < n; i++ {
		d := &f.Diagrams[comp[i]]
		d.Nodes = append(d.Nodes, i)
		// Maximal iff nothing strictly contains i.
		isMax := true
		for k := 0; k < n; k++ {
			if contains[k][i] {
				isMax = false
				break
			}
		}
		if isMax {
			d.Maximal = append(d.Maximal, i)
		}
	}
	for i := range f.Diagrams {
		sort.Ints(f.Diagrams[i].Nodes)
		sort.Ints(f.Diagrams[i].Maximal)
	}
	return f
}

// SubdiagramNodes returns root plus all its descendants through the
// covering relation, ascending.
func (f *Forest) SubdiagramNodes(root int) []int {
	seen := map[int]bool{root: true}
	stack := []int{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range f.Children[v] {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
