package hasse

import (
	"reflect"
	"testing"

	"repro/internal/constraint"
)

func mustCC(t *testing.T, src string) constraint.CC {
	t.Helper()
	cc, err := constraint.ParseCC(src)
	if err != nil {
		t.Fatal(err)
	}
	return cc
}

func isR2(c string) bool { return c == "Area" || c == "Tenure" }

func buildFrom(t *testing.T, srcs ...string) (*Forest, []constraint.CC) {
	t.Helper()
	ccs := make([]constraint.CC, len(srcs))
	for i, s := range srcs {
		ccs[i] = mustCC(t, s)
	}
	return Build(constraint.ClassifyAll(ccs, isR2)), ccs
}

// TestFigure6Diagrams reproduces Example 4.6: H = {H1, H2, H3} where H1={CC1},
// H2={CC2}, H3 has an edge CC3 -> CC4.
func TestFigure6Diagrams(t *testing.T) {
	f, _ := buildFrom(t,
		"cc: count(Age in [10,14], Area = 'Chicago') = 20",
		"cc: count(Age in [50,60], Multi = 0, Area = 'NYC') = 25",
		"cc: count(Age in [13,64], Area = 'Chicago') = 100",
		"cc: count(Age in [18,24], Multi = 0, Area = 'Chicago') = 16",
	)
	if len(f.Diagrams) != 3 {
		t.Fatalf("diagrams = %d, want 3", len(f.Diagrams))
	}
	if !reflect.DeepEqual(f.Children[2], []int{3}) {
		t.Errorf("children of CC3 = %v, want [3]", f.Children[2])
	}
	if len(f.Children[0]) != 0 || len(f.Children[1]) != 0 || len(f.Children[3]) != 0 {
		t.Errorf("unexpected edges: %v", f.Children)
	}
	// H3 contains nodes {2,3} with maximal element 2.
	for _, d := range f.Diagrams {
		if len(d.Nodes) == 2 {
			if !reflect.DeepEqual(d.Nodes, []int{2, 3}) || !reflect.DeepEqual(d.Maximal, []int{2}) {
				t.Errorf("H3 = %+v", d)
			}
		} else if len(d.Maximal) != 1 || d.Maximal[0] != d.Nodes[0] {
			t.Errorf("singleton diagram = %+v", d)
		}
	}
}

// TestCoveringRelationSkipsTransitive checks that a chain a ⊇ b ⊇ c yields
// covering edges a->b and b->c only (no a->c).
func TestCoveringRelationSkipsTransitive(t *testing.T) {
	f, _ := buildFrom(t,
		"cc: count(Age in [0,100], Area = 'X') = 50", // 0
		"cc: count(Age in [10,50], Area = 'X') = 30", // 1 ⊆ 0
		"cc: count(Age in [20,30], Area = 'X') = 10", // 2 ⊆ 1 ⊆ 0
	)
	if !reflect.DeepEqual(f.Children[0], []int{1}) {
		t.Errorf("children(0) = %v", f.Children[0])
	}
	if !reflect.DeepEqual(f.Children[1], []int{2}) {
		t.Errorf("children(1) = %v", f.Children[1])
	}
	if len(f.Diagrams) != 1 || !reflect.DeepEqual(f.Diagrams[0].Maximal, []int{0}) {
		t.Errorf("diagram = %+v", f.Diagrams[0])
	}
}

func TestStarDiagram(t *testing.T) {
	// One parent, two disjoint children.
	f, _ := buildFrom(t,
		"cc: count(Rel = 'Child', Area = 'X') = 50",
		"cc: count(Rel = 'Child', Age in [0,10], Area = 'X') = 20",
		"cc: count(Rel = 'Child', Age in [11,18], Area = 'X') = 30",
	)
	if !reflect.DeepEqual(f.Children[0], []int{1, 2}) {
		t.Errorf("children(0) = %v", f.Children[0])
	}
	if len(f.Diagrams) != 1 {
		t.Errorf("diagrams = %d", len(f.Diagrams))
	}
}

func TestEqualCCsDoNotLoop(t *testing.T) {
	f, _ := buildFrom(t,
		"cc: count(Rel = 'Owner') = 5",
		"cc: count(Rel = 'Owner') = 5",
	)
	if len(f.Diagrams) != 1 {
		t.Fatalf("diagrams = %d", len(f.Diagrams))
	}
	if len(f.Diagrams[0].Maximal) != 1 {
		t.Errorf("maximal = %v", f.Diagrams[0].Maximal)
	}
}

func TestSubdiagramNodes(t *testing.T) {
	f, _ := buildFrom(t,
		"cc: count(Age in [0,100], Area = 'X') = 50",
		"cc: count(Age in [10,50], Area = 'X') = 30",
		"cc: count(Age in [20,30], Area = 'X') = 10",
		"cc: count(Age in [60,70], Area = 'X') = 5",
	)
	got := f.SubdiagramNodes(1)
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("subdiagram(1) = %v", got)
	}
	got = f.SubdiagramNodes(0)
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("subdiagram(0) = %v", got)
	}
}

func TestEmptyForest(t *testing.T) {
	f := Build(nil)
	if len(f.Diagrams) != 0 {
		t.Errorf("diagrams = %d", len(f.Diagrams))
	}
}
