// Package snowflake extends the C-Extension solver to snowflake schemas
// (§5.2 "Extending the solution to snowflake schemas"): starting from the
// fact table, dimension tables are completed one foreign key at a time in
// BFS order, folding each completed dimension into the accumulated R1 so
// that later steps may use CCs spanning the join of everything completed so
// far (Example 5.6).
package snowflake

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/table"
)

// Edge is one foreign-key dependence in the schema graph: From.FKCol
// references To.KeyCol.
type Edge struct {
	From   string // relation holding the FK column
	To     string // referenced relation
	FKCol  string
	KeyCol string
}

// Schema is a snowflake schema: named relations, the fact table, and the
// FK edges. Every relation except Fact must be reachable from Fact.
type Schema struct {
	Fact  string
	Rels  map[string]*table.Relation
	Keys  map[string]string // relation -> primary key column
	Edges []Edge
}

// StepConstraints supplies per-edge constraint sets: CCs over the join view
// accumulated up to (and including) the edge's To relation, and DCs over
// the relation currently playing R1.
type StepConstraints struct {
	CCs []constraint.CC
	DCs []constraint.DC
}

// Result reports the completed relations (same keys as Schema.Rels; dim
// tables may have gained artificial tuples) and the per-step core results.
type Result struct {
	Rels  map[string]*table.Relation
	Steps []*core.Result
	Order []Edge
}

// Solve completes every FK column of the snowflake in BFS order from the
// fact table. constraints maps "From->To" edge labels to their constraint
// sets (missing entries mean no constraints for that step); opt configures
// every step's solver.
func Solve(s *Schema, constraints map[string]StepConstraints, opt core.Options) (*Result, error) {
	if _, ok := s.Rels[s.Fact]; !ok {
		return nil, fmt.Errorf("snowflake: unknown fact table %q", s.Fact)
	}
	rels := make(map[string]*table.Relation, len(s.Rels))
	for k, v := range s.Rels {
		rels[k] = v.Clone()
	}

	order, err := bfsOrder(s)
	if err != nil {
		return nil, err
	}
	res := &Result{Rels: rels, Order: order}

	// acc is the running R1: the fact table joined with every completed
	// dimension so far. Completed FK columns are kept so the original
	// relations can be reconstructed.
	acc := rels[s.Fact].Clone()
	accKey := s.Keys[s.Fact]
	for _, e := range order {
		label := EdgeLabel(e)
		sc := constraints[label]
		in := core.Input{
			R1: acc, R2: rels[e.To],
			K1: accKey, K2: s.Keys[e.To], FK: e.FKCol,
			CCs: sc.CCs, DCs: sc.DCs,
		}
		stepRes, err := core.Solve(in, opt)
		if err != nil {
			return nil, fmt.Errorf("snowflake: step %s: %w", label, err)
		}
		res.Steps = append(res.Steps, stepRes)
		rels[e.To] = stepRes.R2Hat
		// Fold the completed dimension into the accumulator: acc gains the
		// dimension's non-key columns, keeps the FK it just filled, and
		// keeps its key so later steps can still be reconstructed.
		joined, err := joinKeepFK(stepRes.R1Hat, e.FKCol, stepRes.R2Hat, s.Keys[e.To])
		if err != nil {
			return nil, err
		}
		acc = joined
		// Write completed FK values back into the original From relation.
		if err := writeBackFK(rels, s, e, stepRes.R1Hat, accKey); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// EdgeLabel names an edge for the constraints map: "From->To".
func EdgeLabel(e Edge) string { return e.From + "->" + e.To }

// bfsOrder returns the edges in BFS order from the fact table: inner
// dimensions first, exactly as Example 5.6 prescribes.
func bfsOrder(s *Schema) ([]Edge, error) {
	adj := make(map[string][]Edge)
	for _, e := range s.Edges {
		adj[e.From] = append(adj[e.From], e)
	}
	var order []Edge
	seen := map[string]bool{s.Fact: true}
	queue := []string{s.Fact}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			if seen[e.To] {
				return nil, fmt.Errorf("snowflake: relation %q reached twice", e.To)
			}
			if _, ok := s.Rels[e.To]; !ok {
				return nil, fmt.Errorf("snowflake: unknown relation %q", e.To)
			}
			seen[e.To] = true
			order = append(order, e)
			queue = append(queue, e.To)
		}
	}
	for name := range s.Rels {
		if !seen[name] {
			return nil, fmt.Errorf("snowflake: relation %q unreachable from fact table", name)
		}
	}
	return order, nil
}

// joinKeepFK joins r1 ⋈ r2 like table.Join but keeps the FK column in the
// output (the accumulator must retain completed FKs).
func joinKeepFK(r1 *table.Relation, fkCol string, r2 *table.Relation, keyCol string) (*table.Relation, error) {
	idx, err := table.KeyIndex(r2, keyCol)
	if err != nil {
		return nil, err
	}
	var extra []table.Column
	var extraIdx []int
	for j := 0; j < r2.Schema().Len(); j++ {
		c := r2.Schema().Col(j)
		if c.Name == keyCol {
			continue
		}
		extra = append(extra, c)
		extraIdx = append(extraIdx, j)
	}
	out := table.NewRelation(r1.Name, r1.Schema().Extend(extra...))
	for i := 0; i < r1.Len(); i++ {
		fk := r1.Value(i, fkCol)
		r2row, ok := idx[fk]
		if !ok {
			return nil, fmt.Errorf("snowflake: dangling FK %v after completion", fk)
		}
		row := append([]table.Value(nil), r1.Row(i)...)
		for _, j := range extraIdx {
			row = append(row, r2.Row(r2row)[j])
		}
		if err := out.Append(row...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// writeBackFK copies the FK values assigned in the accumulator back into
// the original From relation (keyed by the fact table's primary key when
// From is the fact table; dimension-to-dimension edges share keys through
// the accumulator's retained key columns).
func writeBackFK(rels map[string]*table.Relation, s *Schema, e Edge, solved *table.Relation, accKey string) error {
	from := rels[e.From]
	if !from.Schema().Has(e.FKCol) {
		return fmt.Errorf("snowflake: %s has no column %q", e.From, e.FKCol)
	}
	fromKey := s.Keys[e.From]
	if !solved.Schema().Has(fromKey) {
		// The accumulator lost the From relation's key; fall back to the
		// accumulator key (only valid when From is the fact table).
		fromKey = accKey
	}
	idx, err := table.KeyIndex(from, s.Keys[e.From])
	if err != nil {
		return err
	}
	for i := 0; i < solved.Len(); i++ {
		k := solved.Value(i, fromKey)
		if at, ok := idx[k]; ok {
			from.Set(at, e.FKCol, solved.Value(i, e.FKCol))
		}
	}
	return nil
}
