package snowflake

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/table"
)

// studentsSchema builds the Example 5.6 schema: Students -> Majors ->
// Departments and Students -> Courses.
func studentsSchema(t *testing.T) *Schema {
	t.Helper()
	students := table.NewRelation("Students", table.NewSchema(
		table.IntCol("sid"), table.IntCol("Year"), table.StrCol("Honors"),
		table.IntCol("majorID"), table.IntCol("courseID")))
	for i := int64(1); i <= 24; i++ {
		honors := "no"
		if i%3 == 0 {
			honors = "yes"
		}
		students.MustAppend(table.Int(i), table.Int(1+(i%4)), table.String(honors), table.Null(), table.Null())
	}
	majors := table.NewRelation("Majors", table.NewSchema(
		table.IntCol("mid"), table.StrCol("Field"), table.IntCol("deptID")))
	for i, f := range []string{"CS", "Math", "Bio", "CS", "Math", "Bio"} {
		majors.MustAppend(table.Int(int64(i+1)), table.String(f), table.Null())
	}
	courses := table.NewRelation("Courses", table.NewSchema(
		table.IntCol("cid"), table.StrCol("Level")))
	for i, l := range []string{"Intro", "Intro", "Advanced", "Advanced"} {
		courses.MustAppend(table.Int(int64(i+1)), table.String(l))
	}
	depts := table.NewRelation("Departments", table.NewSchema(
		table.IntCol("did"), table.StrCol("School")))
	depts.MustAppend(table.Int(1), table.String("Engineering"))
	depts.MustAppend(table.Int(2), table.String("Science"))

	return &Schema{
		Fact: "Students",
		Rels: map[string]*table.Relation{
			"Students": students, "Majors": majors, "Courses": courses, "Departments": depts,
		},
		Keys: map[string]string{"Students": "sid", "Majors": "mid", "Courses": "cid", "Departments": "did"},
		Edges: []Edge{
			{From: "Students", To: "Majors", FKCol: "majorID", KeyCol: "mid"},
			{From: "Students", To: "Courses", FKCol: "courseID", KeyCol: "cid"},
			{From: "Majors", To: "Departments", FKCol: "deptID", KeyCol: "did"},
		},
	}
}

func parseCCs(t *testing.T, src string) []constraint.CC {
	t.Helper()
	ccs, _, err := constraint.ParseConstraints(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return ccs
}

func TestBFSOrderMatchesExample56(t *testing.T) {
	s := studentsSchema(t)
	order, err := bfsOrder(s)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Students->Majors", "Students->Courses", "Majors->Departments"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i, e := range order {
		if EdgeLabel(e) != want[i] {
			t.Errorf("step %d = %s, want %s", i, EdgeLabel(e), want[i])
		}
	}
}

func TestSolveCompletesAllFKs(t *testing.T) {
	s := studentsSchema(t)
	cons := map[string]StepConstraints{
		"Students->Majors": {
			CCs: parseCCs(t, "cc: count(Field = 'CS') = 10\ncc: count(Field = 'Math') = 8\ncc: count(Field = 'Bio') = 6\n"),
		},
		"Students->Courses": {
			// CCs may span the accumulated view: Field came from Majors.
			CCs: parseCCs(t, "cc: count(Field = 'CS', Level = 'Advanced') = 4\n"),
		},
		"Majors->Departments": {},
	}
	res, err := Solve(s, cons, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Students", "Majors"} {
		rel := res.Rels[name]
		for i := 0; i < rel.Len(); i++ {
			for _, col := range rel.Schema().Names() {
				if strings.HasSuffix(col, "ID") && rel.Value(i, col).IsNull() {
					t.Fatalf("%s row %d: %s not filled", name, i, col)
				}
			}
		}
	}
	// The Students->Majors CC targets must be met on the final join.
	joined, err := table.Join(res.Rels["Students"], "majorID", res.Rels["Majors"], "mid")
	if err != nil {
		t.Fatal(err)
	}
	for _, cc := range cons["Students->Majors"].CCs {
		if e := metrics.RelativeError(int64(joined.Count(cc.Pred)), cc.Target); e != 0 {
			t.Errorf("%s: error %v", cc, e)
		}
	}
}

func TestSolveWithDCsOnFactTable(t *testing.T) {
	s := studentsSchema(t)
	_, dcs, err := constraint.ParseConstraints(strings.NewReader(
		"dc: deny t1.Honors = 'yes' & t2.Honors = 'yes'\n"))
	if err != nil {
		t.Fatal(err)
	}
	cons := map[string]StepConstraints{
		"Students->Majors": {DCs: dcs}, // at most one honors student per major
	}
	res, err := Solve(s, cons, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if frac := metrics.DCErrorFraction(res.Rels["Students"], "majorID", dcs); frac != 0 {
		t.Errorf("DC error = %v", frac)
	}
	// 8 honors students but only 6 majors: artificial majors required.
	if res.Rels["Majors"].Len() <= 6 {
		t.Errorf("majors = %d, expected augmentation", res.Rels["Majors"].Len())
	}
}

func TestSolveErrors(t *testing.T) {
	s := studentsSchema(t)
	s.Fact = "Nope"
	if _, err := Solve(s, nil, core.Options{}); err == nil {
		t.Error("unknown fact accepted")
	}
	s = studentsSchema(t)
	s.Edges = append(s.Edges, Edge{From: "Courses", To: "Majors", FKCol: "x", KeyCol: "mid"})
	if _, err := Solve(s, nil, core.Options{}); err == nil {
		t.Error("doubly-reached relation accepted")
	}
	s = studentsSchema(t)
	s.Edges = s.Edges[:2] // Departments unreachable
	if _, err := Solve(s, nil, core.Options{}); err == nil {
		t.Error("unreachable relation accepted")
	}
}

func TestOriginalRelationsNotMutated(t *testing.T) {
	s := studentsSchema(t)
	orig := s.Rels["Students"].Clone()
	_, err := Solve(s, nil, core.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < orig.Len(); i++ {
		if !s.Rels["Students"].Value(i, "majorID").IsNull() {
			t.Fatal("input relation mutated")
		}
	}
}
