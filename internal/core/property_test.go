package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/census"
	"repro/internal/constraint"
	"repro/internal/metrics"
	"repro/internal/table"
)

// randomInstance builds a small random C-Extension instance over a toy
// schema: R1(pid, A, B, fk), R2(kid, X, Y). CC targets are derived from a
// random ground-truth assignment so instances are satisfiable; DCs are
// random binary age-gap or category-pair constraints.
func randomInstance(rng *rand.Rand) Input {
	nR2 := 3 + rng.Intn(8)
	r2 := table.NewRelation("R2", table.NewSchema(
		table.IntCol("kid"), table.StrCol("X"), table.IntCol("Y")))
	for i := 0; i < nR2; i++ {
		r2.MustAppend(table.Int(int64(i+1)),
			table.String(fmt.Sprintf("x%d", rng.Intn(3))), table.Int(int64(rng.Intn(2))))
	}
	nR1 := 5 + rng.Intn(30)
	r1 := table.NewRelation("R1", table.NewSchema(
		table.IntCol("pid"), table.IntCol("A"), table.StrCol("B"), table.IntCol("fk")))
	truth := table.NewRelation("R1", r1.Schema())
	for i := 0; i < nR1; i++ {
		a := table.Int(int64(rng.Intn(50)))
		b := table.String(fmt.Sprintf("b%d", rng.Intn(4)))
		r1.MustAppend(table.Int(int64(i+1)), a, b, table.Null())
		truth.MustAppend(table.Int(int64(i+1)), a, b, table.Int(int64(1+rng.Intn(nR2))))
	}
	tj, err := table.Join(truth, "fk", r2, "kid")
	if err != nil {
		panic(err)
	}

	var ccs []constraint.CC
	nCC := rng.Intn(6)
	for i := 0; i < nCC; i++ {
		var atoms []table.Atom
		if rng.Intn(2) == 0 {
			lo := int64(rng.Intn(40))
			atoms = append(atoms, table.Between("A", lo, lo+int64(rng.Intn(20)))...)
		} else {
			atoms = append(atoms, table.Eq("B", table.String(fmt.Sprintf("b%d", rng.Intn(4)))))
		}
		if rng.Intn(2) == 0 {
			atoms = append(atoms, table.Eq("X", table.String(fmt.Sprintf("x%d", rng.Intn(3)))))
		} else {
			atoms = append(atoms, table.Eq("Y", table.Int(int64(rng.Intn(2)))))
		}
		pred := table.And(atoms...)
		ccs = append(ccs, constraint.CC{
			Name: fmt.Sprintf("cc%d", i), Pred: pred,
			Target: int64(tj.Count(pred)),
		})
	}

	var dcs []constraint.DC
	nDC := rng.Intn(4)
	for i := 0; i < nDC; i++ {
		var src string
		switch rng.Intn(3) {
		case 0:
			src = fmt.Sprintf("dc: deny t1.B = 'b%d' & t2.B = 'b%d'", rng.Intn(4), rng.Intn(4))
		case 1:
			src = fmt.Sprintf("dc: deny t1.B = 'b%d' & t2.A < t1.A - %d", rng.Intn(4), 5+rng.Intn(20))
		default:
			src = "dc: deny t1.A = t2.A"
		}
		dc, err := constraint.ParseDC(src)
		if err != nil {
			panic(err)
		}
		dcs = append(dcs, dc)
	}
	return Input{R1: r1, R2: r2, K1: "pid", K2: "kid", FK: "fk", CCs: ccs, DCs: dcs}
}

// TestPropertyInvariants: for random instances and all solver modes, the
// paper's hard guarantees must hold — every FK filled with a real key,
// zero DC violations (non-baseline modes), unique R̂2 keys.
func TestPropertyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 120; trial++ {
		in := randomInstance(rng)
		opts := []Options{
			{Seed: int64(trial)},
			{Seed: int64(trial), Mode: ModeILPOnly},
			{Seed: int64(trial), Mode: ModeHasseOnly},
			{Seed: int64(trial), NoPartition: true},
			{Seed: int64(trial), Workers: 3},
		}
		for oi, opt := range opts {
			res, err := Solve(cloneInput(in), opt)
			if err != nil {
				t.Fatalf("trial %d opt %d: %v", trial, oi, err)
			}
			if res.VJoin.Len() != in.R1.Len() {
				t.Fatalf("trial %d opt %d: |VJoin| = %d, want %d", trial, oi, res.VJoin.Len(), in.R1.Len())
			}
			if frac := metrics.DCErrorFraction(res.R1Hat, "fk", in.DCs); frac != 0 {
				t.Fatalf("trial %d opt %d: DC error %v", trial, oi, frac)
			}
			if _, err := table.KeyIndex(res.R2Hat, "kid"); err != nil {
				t.Fatalf("trial %d opt %d: %v", trial, oi, err)
			}
		}
	}
}

func cloneInput(in Input) Input {
	out := in
	out.R1 = in.R1.Clone()
	out.R2 = in.R2.Clone()
	return out
}

// TestPropertyParallelMatchesSequential: the A.3 parallel coloring must be
// byte-identical to the sequential path.
func TestPropertyParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng)
		seq, err := Solve(cloneInput(in), Options{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Solve(cloneInput(in), Options{Seed: 9, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if seq.R1Hat.Len() != par.R1Hat.Len() {
			t.Fatal("row count differs")
		}
		for i := 0; i < seq.R1Hat.Len(); i++ {
			if seq.R1Hat.Value(i, "fk") != par.R1Hat.Value(i, "fk") {
				t.Fatalf("trial %d: row %d: sequential %v vs parallel %v",
					trial, i, seq.R1Hat.Value(i, "fk"), par.R1Hat.Value(i, "fk"))
			}
		}
		if seq.R2Hat.Len() != par.R2Hat.Len() {
			t.Fatalf("trial %d: R2Hat sizes differ: %d vs %d", trial, seq.R2Hat.Len(), par.R2Hat.Len())
		}
	}
}

// TestPropertyJoinConsistency: on the usedBCols the reported join view
// must agree with what phase I planned — specifically, CC counts computed
// on VJoin equal those computed by re-joining R̂1 with R̂2.
func TestPropertyJoinConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(rng)
		res, err := Solve(cloneInput(in), Options{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		rejoined, err := table.Join(res.R1Hat, "fk", res.R2Hat, "kid")
		if err != nil {
			t.Fatal(err)
		}
		for _, cc := range in.CCs {
			if a, b := res.VJoin.Count(cc.Pred), rejoined.Count(cc.Pred); a != b {
				t.Fatalf("trial %d: %s: VJoin count %d vs rejoin %d", trial, cc.Name, a, b)
			}
		}
	}
}

// TestPropertyHasseExactness: Prop 4.7 — when the CC set has no
// intersecting pairs and a consistent completion exists, the hybrid (which
// routes everything through Algorithm 2) satisfies all CCs exactly.
func TestPropertyHasseExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		d := census.Generate(census.Config{Households: 40 + rng.Intn(60), Areas: 3 + rng.Intn(4), Seed: int64(trial)})
		ccs := d.GoodCCs(10 + rng.Intn(30))
		in := Input{R1: d.Persons, R2: d.Housing, K1: "pid", K2: "hid", FK: "hid", CCs: ccs}
		res, err := Solve(in, Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.CCsToILP != 0 {
			t.Fatalf("trial %d: %d good CCs routed to ILP", trial, res.Stats.CCsToILP)
		}
		for i, e := range metrics.CCErrors(res.VJoin, ccs) {
			if e != 0 {
				t.Fatalf("trial %d: CC %s error %v", trial, ccs[i].Name, e)
			}
		}
	}
}

// TestPropertyParallelCensus: parallel equivalence on the realistic census
// workload with all DCs.
func TestPropertyParallelCensus(t *testing.T) {
	d := census.Generate(census.Config{Households: 120, Areas: 6, Seed: 3})
	mk := func() Input {
		return Input{R1: d.Persons.Clone(), R2: d.Housing.Clone(), K1: "pid", K2: "hid", FK: "hid",
			CCs: d.BadCCs(40), DCs: census.AllDCs()}
	}
	seq, err := Solve(mk(), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Solve(mk(), Options{Seed: 5, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < seq.R1Hat.Len(); i++ {
		if seq.R1Hat.Value(i, "hid") != par.R1Hat.Value(i, "hid") {
			t.Fatalf("row %d differs", i)
		}
	}
	if frac := metrics.DCErrorFraction(par.R1Hat, "hid", census.AllDCs()); frac != 0 {
		t.Fatalf("parallel DC error %v", frac)
	}
}
