package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/obsv"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate testdata/solver_golden.json from the current solver")

// TestSolverOutputGolden pins the solver's exact output bytes: for a grid of
// instances, modes, and seeds, the SHA-256 of the (R̂1, R̂2, V_Join)
// fingerprint must match the hashes recorded in testdata/solver_golden.json.
// The file was generated from the row-major evaluation path that predates the
// columnar substrate, so this test is the oracle that the columnar layer (and
// any later rework of the hot loops) changes performance only, never output.
//
// Regenerate deliberately with:
//
//	go test ./internal/core -run TestSolverOutputGolden -update-golden
func TestSolverOutputGolden(t *testing.T) {
	type instance struct {
		name string
		in   func() Input
	}
	instances := []instance{
		{"paper", func() Input { return paperInput(t) }},
		{"census-good", func() Input { return censusInput(t, 60, 24, true, false) }},
		{"census-bad", func() Input { return censusInput(t, 60, 24, false, false) }},
	}
	modes := []struct {
		name string
		opt  Options
	}{
		{"hybrid", Options{}},
		{"ilp-only", Options{Mode: ModeILPOnly}},
		{"hasse-only", Options{Mode: ModeHasseOnly}},
		{"input-order", Options{Order: OrderInput}},
		{"no-partition", Options{NoPartition: true}},
		{"baseline", BaselineOptions(0)},
		{"baseline-marginals", BaselineMarginalsOptions(0)},
	}

	path := filepath.Join("testdata", "solver_golden.json")
	got := make(map[string]string)
	for _, inst := range instances {
		for _, mode := range modes {
			for _, seed := range []int64{1, 7, 42} {
				opt := mode.opt
				opt.Seed = seed
				// Every golden solve runs with a live trace attached AND the
				// explain report requested: the hashes below were pinned
				// without either, so matching them here proves that span
				// recording and explain measurement never perturb output
				// bytes — for every instance, mode, and seed in the grid.
				tr := obsv.NewTrace(obsv.NewID(), "golden", "test")
				tr.RequestExplain()
				ctx := obsv.WithTrace(nil, tr)
				res, err := SolveOnContext(ctx, inst.in(), opt, PoolFor(opt))
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", inst.name, mode.name, seed, err)
				}
				if tr.SpanCount() < 4 {
					t.Fatalf("%s/%s seed %d: trace recorded %d spans, want >= 4 (compile + phases)", inst.name, mode.name, seed, tr.SpanCount())
				}
				ex := tr.Explain()
				if ex == nil {
					t.Fatalf("%s/%s seed %d: explain requested but no report on the trace", inst.name, mode.name, seed)
				}
				if ex.ViewRows == 0 || len(ex.CCs) == 0 || len(ex.Phases) == 0 {
					t.Fatalf("%s/%s seed %d: explain report is hollow: %+v", inst.name, mode.name, seed, ex)
				}
				fp := resultFingerprint(res)
				h := sha256.Sum256([]byte(fp[0] + "\x00" + fp[1] + "\x00" + fp[2]))
				got[fmt.Sprintf("%s/%s/seed=%d", inst.name, mode.name, seed)] = hex.EncodeToString(h[:])
			}
		}
	}

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden hashes to %s", len(got), path)
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update-golden): %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(got))
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w, ok := want[k]
		if !ok {
			t.Errorf("%s: missing from golden file (regenerate with -update-golden)", k)
			continue
		}
		if got[k] != w {
			t.Errorf("%s: output hash %s, golden %s — solver output changed", k, got[k][:16], w[:16])
		}
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, test produced %d", len(want), len(got))
	}
}
