package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/hypergraph"
	"repro/internal/table"
)

// TestSweepMatchesBruteForce checks that the optimized conflict-edge
// enumeration (clique shortcut + sorted sweep) produces exactly the edge
// set of the definitional brute force (evaluate the DC predicate on every
// ordered pair) on random partitions and random Table-4-shaped DCs.
func TestSweepMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	ops := []string{"<", "<=", ">", ">=", "=", "!="}
	for trial := 0; trial < 150; trial++ {
		// Random partition of persons.
		n := 3 + rng.Intn(40)
		r1 := table.NewRelation("R1", table.NewSchema(
			table.IntCol("pid"), table.IntCol("Age"), table.StrCol("Rel"), table.IntCol("fk")))
		rels := []string{"Owner", "Spouse", "Child"}
		for i := 0; i < n; i++ {
			r1.MustAppend(table.Int(int64(i)), table.Int(int64(rng.Intn(60))),
				table.String(rels[rng.Intn(len(rels))]), table.Null())
		}
		r2 := table.NewRelation("R2", table.NewSchema(table.IntCol("kid"), table.StrCol("X")))
		r2.MustAppend(table.Int(1), table.String("x"))

		// Random DC: pure-unary pair, or single binary with random op/offset.
		var src string
		switch rng.Intn(3) {
		case 0:
			src = fmt.Sprintf("dc: deny t1.Rel = '%s' & t2.Rel = '%s'",
				rels[rng.Intn(3)], rels[rng.Intn(3)])
		case 1:
			src = fmt.Sprintf("dc: deny t1.Rel = '%s' & t2.Age %s t1.Age - %d",
				rels[rng.Intn(3)], ops[rng.Intn(len(ops))], rng.Intn(30))
		default:
			src = fmt.Sprintf("dc: deny t2.Age %s t1.Age + %d",
				ops[rng.Intn(len(ops))], rng.Intn(20))
		}
		dc, err := constraint.ParseDC(src)
		if err != nil {
			t.Fatal(err)
		}

		in := Input{R1: r1, R2: r2, K1: "pid", K2: "kid", FK: "fk", DCs: []constraint.DC{dc}}
		var stat Stats
		p, err := newProb(in, Options{}, &stat)
		if err != nil {
			t.Fatal(err)
		}
		p.ensureDCCand()
		ph := &phase2{p: p, r2hat: r2.Clone(), fk: make([]table.Value, n),
			keyRows: map[table.Value][]int{}, fresh: newFreshKeys(r2, "kid")}

		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		g := hypergraph.New(n)
		ph.buildConflicts(g, rows)

		// Brute force.
		want := make(map[[2]int]bool)
		s := p.vjoin.Schema()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				if dc.Holds(s, p.vjoin.Row(a), p.vjoin.Row(b)) {
					k := [2]int{min(a, b), max(a, b)}
					want[k] = true
				}
			}
		}
		got := make(map[[2]int]bool)
		for i := 0; i < g.NumEdges(); i++ {
			e := g.Edge(i)
			got[[2]int{e[0], e[1]}] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (%s): %d edges, want %d", trial, src, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d (%s): missing edge %v", trial, src, k)
			}
		}
	}
}

// TestSweepableGuards: non-int columns and unknown columns fall back to
// the generic path.
func TestSweepableGuards(t *testing.T) {
	s := table.NewSchema(table.IntCol("Age"), table.StrCol("Rel"))
	if !sweepable(constraint.BinaryAtom{LCol: "Age", RCol: "Age", Op: table.OpLt}, s) {
		t.Error("int/int should sweep")
	}
	if sweepable(constraint.BinaryAtom{LCol: "Rel", RCol: "Age", Op: table.OpLt}, s) {
		t.Error("string column should not sweep")
	}
	if sweepable(constraint.BinaryAtom{LCol: "Ghost", RCol: "Age", Op: table.OpLt}, s) {
		t.Error("unknown column should not sweep")
	}
}
