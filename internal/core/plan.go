package core

import (
	"sort"

	"repro/internal/constraint"
)

// Plan is the compiled, data-independent part of a solve: the pairwise CC
// relationship classification, held in canonical (sorted-render) constraint
// order so one plan serves every instance that shares a structural
// fingerprint regardless of how its constraints were declared. Plans are
// immutable and safe for concurrent use; the serving layer caches them in
// an LRU keyed by StructuralFingerprint.
//
// Classification is the only artifact cached at this layer: the hybrid
// split and the Hasse forest derive from it in O(|CC|²) without touching
// predicates, and everything else the solver compiles (combo tables, bound
// predicates, candidate bitsets) depends on the row data and lives in the
// per-session compiled problem instead.
type Plan struct {
	key     [32]byte // StructuralFingerprint the plan was compiled under
	renders []string // canonical (sorted, name-elided) CC renders
	rel     [][]constraint.Relationship
}

// CompilePlan classifies the instance's CC set and returns the reusable
// plan, keyed by the instance's structural fingerprint.
func CompilePlan(in Input, opt Options) (*Plan, error) {
	key, err := StructuralFingerprint(in, opt)
	if err != nil {
		return nil, err
	}
	isR2 := make(map[string]bool)
	for _, col := range in.R2.Schema().Names() {
		if col != in.K2 {
			isR2[col] = true
		}
	}
	rel := constraint.ClassifyAll(in.CCs, func(c string) bool { return isR2[c] })
	perm, renders := renderPerm(in.CCs) // canonical position -> input index
	canon := make([][]constraint.Relationship, len(perm))
	sorted := make([]string, len(perm))
	for a, i := range perm {
		canon[a] = make([]constraint.Relationship, len(perm))
		for b, j := range perm {
			canon[a][b] = rel[i][j]
		}
		sorted[a] = renders[i]
	}
	return &Plan{key: key, renders: sorted, rel: canon}, nil
}

// Key returns the structural fingerprint the plan was compiled under.
func (pl *Plan) Key() [32]byte { return pl.key }

// NumCCs returns the size of the classified CC set.
func (pl *Plan) NumCCs() int { return len(pl.renders) }

// relFor remaps the plan's canonical classification matrix into the order
// of the given CC set. ok is false when the CC set does not match the plan
// (different renders); callers then classify directly. Two CCs with equal
// canonical renders are identical constraints, so any assignment among
// equal renders yields the same matrix.
func (pl *Plan) relFor(ccs []constraint.CC) ([][]constraint.Relationship, bool) {
	if len(ccs) != len(pl.renders) {
		return nil, false
	}
	perm, renders := renderPerm(ccs) // canonical position -> input index
	for a, i := range perm {
		if renders[i] != pl.renders[a] {
			return nil, false
		}
	}
	rel := make([][]constraint.Relationship, len(ccs))
	for a, i := range perm {
		rel[i] = make([]constraint.Relationship, len(ccs))
		for b, j := range perm {
			rel[i][j] = pl.rel[a][b]
		}
	}
	return rel, true
}

// renderPerm returns the name-elided render of every CC (in input order)
// and the permutation sorting the set into canonical render order: perm[a]
// is the input index of the a-th canonical CC.
func renderPerm(ccs []constraint.CC) (perm []int, renders []string) {
	renders = make([]string, len(ccs))
	for i, cc := range ccs {
		cc.Name = ""
		renders[i] = constraint.RenderCC(cc)
	}
	perm = make([]int, len(ccs))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return renders[perm[a]] < renders[perm[b]] })
	return perm, renders
}
