package core

import (
	"sort"

	"repro/internal/constraint"
	"repro/internal/hypergraph"
	"repro/internal/table"
)

// sweepable reports whether a binary DC atom compares two integer columns
// with an order/equality operator, enabling the sorted-sweep edge
// enumerator: instead of probing every candidate pair (quadratic in the
// partition size even when few pairs conflict), the left variable's
// candidates are sorted by the compared column and each right-variable row
// selects its conflicting range by binary search. This is the dominant DC
// shape in the paper's Table 4 (owner/member age-gap constraints).
func sweepable(a constraint.BinaryAtom, s *table.Schema) bool {
	jl, okL := s.Index(a.LCol)
	jr, okR := s.Index(a.RCol)
	if !okL || !okR {
		return false
	}
	return s.Col(jl).Type == table.TypeInt && s.Col(jr).Type == table.TypeInt
}

// intColAccess reads an int column of the join view through the columnar
// snapshot when available (typed slice, no Value unwrapping), falling back
// to row access for columns the snapshot does not carry as typed ints.
func (p *prob) intColAccess(col string) func(i int) (int64, bool) {
	if vals, null, ok := p.colView.IntCol(col); ok {
		if null == nil {
			return func(i int) (int64, bool) { return vals[i], true }
		}
		return func(i int) (int64, bool) { return vals[i], !null[i] }
	}
	j := p.vjoin.Schema().MustIndex(col)
	return func(i int) (int64, bool) {
		v := p.vjoin.Row(i)[j]
		return v.Int(), v.Kind() == table.KindInt
	}
}

// sweepEdges enumerates the edges of a 2-variable DC with exactly one
// binary atom using a sorted sweep over the binary atom's left column.
// Unary atoms are already folded into the candidate lists.
func (ph *phase2) sweepEdges(g *hypergraph.Graph, atom constraint.BinaryAtom, cands [][]int, rows []int) {
	p := ph.p
	lcol := p.intAccess[atom.LCol]
	rcol := p.intAccess[atom.RCol]

	// Sort the left-variable candidates by the compared column, skipping
	// null cells (null never conflicts).
	type lv struct {
		local int
		val   int64
	}
	left := make([]lv, 0, len(cands[atom.LVar]))
	for _, li := range cands[atom.LVar] {
		v, ok := lcol(rows[li])
		if !ok {
			continue
		}
		left = append(left, lv{local: li, val: v})
	}
	sort.Slice(left, func(a, b int) bool { return left[a].val < left[b].val })

	for _, ri := range cands[atom.RVar] {
		rv, ok := rcol(rows[ri])
		if !ok {
			continue
		}
		bound := rv + atom.Offset
		var lo, hi int // half-open range [lo, hi) of conflicting left rows
		switch atom.Op {
		case table.OpLt:
			lo, hi = 0, sort.Search(len(left), func(i int) bool { return left[i].val >= bound })
		case table.OpLe:
			lo, hi = 0, sort.Search(len(left), func(i int) bool { return left[i].val > bound })
		case table.OpGt:
			lo, hi = sort.Search(len(left), func(i int) bool { return left[i].val > bound }), len(left)
		case table.OpGe:
			lo, hi = sort.Search(len(left), func(i int) bool { return left[i].val >= bound }), len(left)
		case table.OpEq:
			lo = sort.Search(len(left), func(i int) bool { return left[i].val >= bound })
			hi = sort.Search(len(left), func(i int) bool { return left[i].val > bound })
		case table.OpNe:
			// Two ranges: everything below and everything above `bound`.
			mid1 := sort.Search(len(left), func(i int) bool { return left[i].val >= bound })
			mid2 := sort.Search(len(left), func(i int) bool { return left[i].val > bound })
			for _, l := range left[:mid1] {
				if l.local != ri {
					g.AddPair(ri, l.local)
				}
			}
			for _, l := range left[mid2:] {
				if l.local != ri {
					g.AddPair(ri, l.local)
				}
			}
			continue
		default:
			continue
		}
		for _, l := range left[lo:hi] {
			if l.local != ri {
				g.AddPair(ri, l.local)
			}
		}
	}
}
