package core

import (
	"sort"

	"repro/internal/constraint"
	"repro/internal/hypergraph"
	"repro/internal/table"
)

// sweepable reports whether a binary DC atom compares two integer columns
// with an order/equality operator, enabling the sorted-sweep edge
// enumerator: instead of probing every candidate pair (quadratic in the
// partition size even when few pairs conflict), the left variable's
// candidates are sorted by the compared column and each right-variable row
// selects its conflicting range by binary search. This is the dominant DC
// shape in the paper's Table 4 (owner/member age-gap constraints).
func sweepable(a constraint.BinaryAtom, s *table.Schema) bool {
	jl, okL := s.Index(a.LCol)
	jr, okR := s.Index(a.RCol)
	if !okL || !okR {
		return false
	}
	return s.Col(jl).Type == table.TypeInt && s.Col(jr).Type == table.TypeInt
}

// sweepEdges enumerates the edges of a 2-variable DC with exactly one
// binary atom using a sorted sweep over the binary atom's left column.
// Unary atoms are already folded into the candidate lists.
func (ph *phase2) sweepEdges(g *hypergraph.Graph, dc constraint.DC, cands [][]int, rows []int) {
	p := ph.p
	s := p.vjoin.Schema()
	atom := dc.Binary[0]
	jl := s.MustIndex(atom.LCol)
	jr := s.MustIndex(atom.RCol)

	// Sort the left-variable candidates by the compared column, skipping
	// null cells (null never conflicts).
	type lv struct {
		local int
		val   int64
	}
	left := make([]lv, 0, len(cands[atom.LVar]))
	for _, li := range cands[atom.LVar] {
		v := p.vjoin.Row(rows[li])[jl]
		if v.Kind() != table.KindInt {
			continue
		}
		left = append(left, lv{local: li, val: v.Int()})
	}
	sort.Slice(left, func(a, b int) bool { return left[a].val < left[b].val })

	for _, ri := range cands[atom.RVar] {
		rv := p.vjoin.Row(rows[ri])[jr]
		if rv.Kind() != table.KindInt {
			continue
		}
		bound := rv.Int() + atom.Offset
		var lo, hi int // half-open range [lo, hi) of conflicting left rows
		switch atom.Op {
		case table.OpLt:
			lo, hi = 0, sort.Search(len(left), func(i int) bool { return left[i].val >= bound })
		case table.OpLe:
			lo, hi = 0, sort.Search(len(left), func(i int) bool { return left[i].val > bound })
		case table.OpGt:
			lo, hi = sort.Search(len(left), func(i int) bool { return left[i].val > bound }), len(left)
		case table.OpGe:
			lo, hi = sort.Search(len(left), func(i int) bool { return left[i].val >= bound }), len(left)
		case table.OpEq:
			lo = sort.Search(len(left), func(i int) bool { return left[i].val >= bound })
			hi = sort.Search(len(left), func(i int) bool { return left[i].val > bound })
		case table.OpNe:
			// Two ranges: everything below and everything above `bound`.
			mid1 := sort.Search(len(left), func(i int) bool { return left[i].val >= bound })
			mid2 := sort.Search(len(left), func(i int) bool { return left[i].val > bound })
			for _, l := range left[:mid1] {
				if l.local != ri {
					g.AddEdge(ri, l.local)
				}
			}
			for _, l := range left[mid2:] {
				if l.local != ri {
					g.AddEdge(ri, l.local)
				}
			}
			continue
		default:
			continue
		}
		for _, l := range left[lo:hi] {
			if l.local != ri {
				g.AddEdge(ri, l.local)
			}
		}
	}
}
