package core

import (
	"repro/internal/hasse"
	"repro/internal/sched"
)

// runHasseParallel executes the forest's maximal subtrees concurrently.
// Subtrees in different diagrams have pairwise-disjoint CC predicates, but
// they can still compete for the same unfilled V_Join rows (disjointness may
// come from the R2 side alone), so plain fan-out would be order-dependent.
// Instead each subtree runs speculatively against a snapshot of the fill
// state, recording its assignments as ordered proposals. Proposals are then
// merged in canonical subtree order: a subtree whose proposed rows are all
// still unfilled behaves exactly as it would have sequentially, so its
// proposals are applied verbatim; a subtree that collided with an earlier
// merge is discarded and replayed against the live state. The merged result
// is byte-identical to the serial path in all cases, and in the common case
// (row-disjoint subtrees, e.g. per-template census CCs) every subtree's
// work is done off the critical path.
func (p *prob) runHasseParallel(ccIdx []int, forest *hasse.Forest) {
	var roots []int
	for _, d := range forest.Diagrams {
		for _, m := range d.Maximal {
			roots = append(roots, m)
		}
	}
	if len(roots) == 0 {
		return
	}
	// One shared snapshot for every speculative execution; each task layers
	// only its own assignments on top.
	snap := append([]int(nil), p.comboOf...)
	sched.Ordered(p.pool, len(roots), func(i int) *hasseExec {
		e := &hasseExec{p: p, base: snap, mine: make(map[int]bool)}
		e.solveDiagram(ccIdx, forest, roots[i])
		return e
	}, func(i int, e *hasseExec) {
		conflict := false
		for _, pr := range e.proposals {
			if p.comboOf[pr.row] >= 0 {
				conflict = true
				break
			}
		}
		if !conflict {
			for _, pr := range e.proposals {
				p.assignCombo(pr.row, pr.combo)
			}
			return
		}
		// An earlier subtree claimed one of our rows; the speculative run is
		// stale. Replay sequentially — identical to the serial schedule.
		direct := &hasseExec{p: p}
		direct.solveDiagram(ccIdx, forest, roots[i])
	})
}
