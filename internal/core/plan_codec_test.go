package core

import (
	"bytes"
	"reflect"
	"testing"
)

func TestPlanCodecRoundTrip(t *testing.T) {
	in := censusInput(t, 40, 8, true, false)
	opt := Options{Seed: 3}
	pl, err := CompilePlan(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodePlan(pl)
	got, err := DecodePlan(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.key != pl.key || !reflect.DeepEqual(got.renders, pl.renders) || !reflect.DeepEqual(got.rel, pl.rel) {
		t.Fatal("decoded plan differs from original")
	}
	if !bytes.Equal(EncodePlan(got), enc) {
		t.Fatal("re-encoding not canonical")
	}
	// A decoded plan must serve the remap path like a compiled one.
	rel, ok := got.relFor(in.CCs)
	if !ok || rel == nil {
		t.Fatal("decoded plan did not remap onto its own CC set")
	}
}

func TestPlanCodecRejectsCorruption(t *testing.T) {
	in := censusInput(t, 30, 6, true, false)
	pl, err := CompilePlan(in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodePlan(pl)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodePlan(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := DecodePlan(append(bytes.Clone(enc), 0)); err == nil {
		t.Fatal("trailing bytes decoded without error")
	}
	bad := bytes.Clone(enc)
	bad[len(bad)-1] = 0xee // relationship byte out of range
	if _, err := DecodePlan(bad); err == nil {
		t.Fatal("invalid relationship decoded without error")
	}
}
