package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obsv"
	"repro/internal/sched"
	"repro/internal/table"
)

// SessionState is the warm state a solver session retains between solves:
// the compiled problem (columnar snapshot, bound constraints, combo tables,
// classification artifacts) and the phase-2 memos of recent solves
// (per-partition colorings plus the fresh-key trace needed to replay
// them). Several memos are kept because what-if traffic alternates deltas
// against one base: a bound nudge followed by a row edit reverts the
// nudge, and the partitions then match the solve before last, not the
// last. It is an opaque box owned by one session; it is NOT safe for
// concurrent use — callers serialize solves per session.
type SessionState struct {
	p     *prob
	memos []*solveMemo // front = most recent solve
}

// memoKeep bounds the retained phase-2 memos per session.
const memoKeep = 3

// NewSessionState returns an empty warm state; the first SolveSession call
// through it runs cold and fills it.
func NewSessionState() *SessionState { return &SessionState{} }

// Reset drops all warm state; the next solve runs cold.
func (st *SessionState) Reset() { st.p, st.memos = nil, nil }

// Warm reports whether the state holds a compiled problem.
func (st *SessionState) Warm() bool { return st != nil && st.p != nil }

// Changes declares how the input of the upcoming solve differs from the
// input of the previous solve recorded in a SessionState. It is a contract,
// not a diff: the caller (the incremental engine) guarantees that nothing
// outside the declared changes differs — same relations (R1 mutated only in
// the declared rows/columns, R2 untouched), same constraint predicates
// (CC targets may differ), same options. Declaring too little breaks the
// byte-identity guarantee; declaring too much only costs performance.
type Changes struct {
	// Full forces a cold rebuild (unknown provenance).
	Full bool
	// CCTargets marks that some CC targets changed (predicates identical).
	CCTargets bool
	// DirtyRows lists R1 row indices whose attribute cells were edited
	// since the previous solve; DirtyCols the union of edited column names.
	DirtyRows []int
	DirtyCols []string
	// Rows appended to (or truncated from) R1 are derived from the length
	// difference between the previous and the new R1; they need not be
	// declared.
}

// errSpliceDiverged signals that a spliced partition's replay disagreed
// with the live fresh-key state — a bug guard; SolveSession reacts by
// discarding the warm state and re-solving cold.
var errSpliceDiverged = errors.New("core: spliced partition diverged from fresh-key state")

// SolveSession solves in/opt reusing (and refreshing) the warm state in st.
//
// When st holds a compatible compiled problem, the problem is patched by
// the declared changes instead of rebuilt — the columnar snapshot keeps its
// untouched columns, bound constraints and combo tables survive, and the
// pairwise CC classification (with the hybrid split and Hasse forest) is
// never recomputed. Phase 2 then splices partition colorings from the
// retained memos wherever a partition is provably identical: same combo,
// same size, equal DC-referenced column values position by position (the
// complete input of the coloring), and an unchanged fresh-key state when
// the partition minted artificial R2 tuples. Everything else re-solves.
//
// The output is byte-identical to Solve(in, opt) on the same input: every
// reused artifact is a pure function of inputs that did not change, and the
// solver consumes no randomness outside the baselines' RandomFK paths
// (which disable splicing entirely).
//
// plan, when non-nil and matching, supplies the CC classification for cold
// builds. pool follows SolveOn semantics (nil = sequential).
//
//lint:ctxflow non-cancellable convenience wrapper; SolveSessionContext is the serving-path entry
func SolveSession(in Input, opt Options, st *SessionState, ch Changes, plan *Plan, pool *sched.Pool) (*Result, error) {
	return SolveSessionContext(nil, in, opt, st, ch, plan, pool)
}

// SolveSessionContext is SolveSession with cooperative cancellation
// (SolveOnContext semantics: checked at phase boundaries, nil never
// cancels). A canceled solve may have mutated the retained problem mid-way
// through phase I, so the warm state is dropped before returning — the
// session's next solve rebuilds cold, which is always correct.
func SolveSessionContext(ctx context.Context, in Input, opt Options, st *SessionState, ch Changes, plan *Plan, pool *sched.Pool) (*Result, error) {
	if st == nil {
		st = NewSessionState()
	}
	res, err := solveSessionOnce(ctx, in, opt, st, ch, plan, pool)
	if errors.Is(err, errSpliceDiverged) {
		// Defensive: replay disagreed with the recorded memo. Drop every
		// warm artifact and answer from a cold solve, which is always
		// correct.
		st.Reset()
		return solveSessionOnce(ctx, in, opt, st, Changes{Full: true}, plan, pool)
	}
	if err != nil && ctxErr(ctx) != nil {
		st.Reset()
	}
	return res, err
}

func solveSessionOnce(ctx context.Context, in Input, opt Options, st *SessionState, ch Changes, plan *Plan, pool *sched.Pool) (*Result, error) {
	var stat Stats
	tr := obsv.FromContext(ctx)
	t0 := now()
	p := st.p
	if p == nil || ch.Full || !p.compatible(in, opt) {
		var err error
		p, err = newProb(in, opt, &stat)
		if err != nil {
			return nil, err
		}
		tr.Span("compile", t0, since(t0))
		p.plan = plan
		st.p, st.memos = p, nil
	} else {
		if err := p.applyChanges(in, opt, &stat, ch); err != nil {
			// Patch failure leaves the problem in an undefined state;
			// rebuild from scratch.
			st.Reset()
			tr.Event("session: patch failed; rebuilding cold")
			p, err = newProb(in, opt, &stat)
			if err != nil {
				return nil, err
			}
			tr.Span("compile", t0, since(t0))
			p.plan = plan
			st.p = p
		} else {
			stat.ProbReused = true
			tr.Span("rebase", t0, since(t0))
		}
	}
	p.pool = pool
	p.ctx = ctx
	p.trace = tr

	// Splicing and capture only make sense for the deterministic coloring
	// path: RandomFK consumes the rng stream (replay would desynchronize
	// it) and NoPartition colors one global graph with no per-partition
	// units to splice.
	p.capture = !opt.RandomFK && !opt.NoPartition
	p.priors = st.memos

	res, err := p.run(t0)
	p.priors, p.capture = nil, false
	if err != nil {
		st.memos = nil
		p.captured = nil
		return nil, err
	}
	if p.captured != nil {
		st.memos = append([]*solveMemo{p.captured}, st.memos...)
		if len(st.memos) > memoKeep {
			st.memos = st.memos[:memoKeep]
		}
	}
	p.captured = nil
	return res, nil
}

// compatible reports whether the retained problem can be patched to solve
// in/opt. The session contract keeps the relation objects stable (R1 is
// mutated in place, R2 never), so identity checks plus shape checks
// suffice; constraint predicates are trusted unchanged per the Changes
// contract, with a cheap shape check as a tripwire.
func (p *prob) compatible(in Input, opt Options) bool {
	if p.in.K1 != in.K1 || p.in.K2 != in.K2 || p.in.FK != in.FK {
		return false
	}
	if p.in.R1 != in.R1 || p.in.R2 != in.R2 {
		return false
	}
	if len(p.in.CCs) != len(in.CCs) || len(p.in.DCs) != len(in.DCs) {
		return false
	}
	for i := range in.CCs {
		if len(p.in.CCs[i].Pred.Atoms) != len(in.CCs[i].Pred.Atoms) ||
			len(p.in.CCs[i].OrElse) != len(in.CCs[i].OrElse) {
			return false
		}
	}
	o1, o2 := p.opt, opt
	o1.Workers, o2.Workers = 0, 0 // the pool is the parallelism policy
	return o1 == o2
}

// applyChanges patches a retained problem in place for the new input:
// V_Join rows are appended/truncated/rewritten to mirror R1, the columnar
// snapshot is rebuilt reusing untouched columns, compiled predicates are
// re-bound, the DC candidate bitsets are repaired for exactly the changed
// rows, and the phase-1 fill state is reset. Classification artifacts
// (rel, split, forest) survive untouched — they depend only on predicates.
func (p *prob) applyChanges(in Input, opt Options, stat *Stats, ch Changes) error {
	oldLen := p.vjoin.Len()
	newLen := in.R1.Len()
	p.in, p.opt, p.stat = in, opt, stat

	// 1. Row shape: truncate or append V_Join rows to mirror R1.
	if newLen < oldLen {
		p.vjoin.Truncate(newLen)
		p.comboOf = p.comboOf[:newLen]
	}
	for _, r := range ch.DirtyRows {
		// Rows at or past the current V_Join length are freshly appended
		// below with their new values; nothing to rewrite.
		if r >= newLen || r >= p.vjoin.Len() {
			continue
		}
		p.vjoin.Set(r, p.in.K1, in.R1.Value(r, p.in.K1))
		for _, c := range p.aCols {
			p.vjoin.Set(r, c, in.R1.Value(r, c))
		}
	}
	nCols := p.vjoin.Schema().Len()
	for i := oldLen; i < newLen; i++ {
		row := make([]table.Value, 0, nCols)
		row = append(row, in.R1.Value(i, in.K1))
		for _, c := range p.aCols {
			row = append(row, in.R1.Value(i, c))
		}
		for range p.bCols {
			row = append(row, table.Null())
		}
		if err := p.vjoin.Append(row...); err != nil {
			return err
		}
		p.comboOf = append(p.comboOf, -1)
	}

	// 2. Columnar snapshot: full rebuild when the row count changed,
	// dirty-columns-only otherwise.
	immutable := append([]string{p.in.K1}, p.aCols...)
	if newLen != oldLen {
		p.colView = table.NewColumnar(p.vjoin, immutable...)
	} else {
		dirtyCols := make(map[string]bool, len(ch.DirtyCols)+1)
		for _, c := range ch.DirtyCols {
			dirtyCols[c] = true
		}
		p.colView = table.NewColumnarReusing(p.vjoin, p.colView, dirtyCols, immutable...)
	}

	// 3. Re-bind the compiled CC R1-parts against the new snapshot (string
	// constants re-code against possibly-changed dictionaries).
	for i := range p.ccR1s {
		for d := range p.ccR1s[i] {
			p.ccR1b[i][d] = p.colView.Bind(p.ccR1s[i][d])
		}
	}

	// 4. DC candidate bitsets and typed accessors.
	changed := make([]int, 0, len(ch.DirtyRows)+max(0, newLen-oldLen))
	for _, r := range ch.DirtyRows {
		if r < newLen {
			changed = append(changed, r)
		}
	}
	for i := oldLen; i < newLen; i++ {
		changed = append(changed, i)
	}
	p.patchDCCand(changed, newLen)

	// 5. Reset the phase-1 fill state: every row unfilled, every usedBCol
	// back to null.
	for i := range p.comboOf {
		p.comboOf[i] = -1
	}
	for _, c := range p.usedBCols {
		j := p.vjoin.Schema().MustIndex(c)
		for i := 0; i < newLen; i++ {
			p.vjoin.SetAt(i, j, table.Null())
		}
	}
	return nil
}

// patchDCCand repairs the lazily-built DC candidate bitsets after a patch:
// every bitset is resized to the new row count and the changed rows'
// entries are re-evaluated against the new snapshot. The typed accessors
// for binary-atom columns are rebuilt wholesale (they captured slices of
// the previous snapshot). A problem that never ran phase 2's DC path has
// nothing to patch; ensureDCCand will build against the new snapshot.
func (p *prob) patchDCCand(changed []int, newLen int) {
	if p.dcCand == nil {
		return
	}
	for di, dc := range p.in.DCs {
		for v := 0; v < dc.K; v++ {
			bits := p.dcCand[di][v]
			if newLen <= len(bits) {
				bits = bits[:newLen]
			} else {
				bits = append(bits, make([]bool, newLen-len(bits))...)
			}
			var atoms []table.Atom
			for _, a := range dc.Unary {
				if a.Var == v {
					atoms = append(atoms, table.Atom{Col: a.Col, Op: a.Op, Val: a.Val})
				}
			}
			cp := p.colView.Bind(table.Predicate{Atoms: atoms})
			for _, r := range changed {
				bits[r] = cp.Eval(r)
			}
			p.dcCand[di][v] = bits
		}
	}
	p.intAccess = make(map[string]func(int) (int64, bool))
	for _, dc := range p.in.DCs {
		for _, a := range dc.Binary {
			for _, col := range []string{a.LCol, a.RCol} {
				if _, ok := p.intAccess[col]; !ok && p.vjoin.Schema().Has(col) {
					p.intAccess[col] = p.intColAccess(col)
				}
			}
		}
	}
}

// solveMemo records, per phase-2 partition of one solve, everything needed
// to replay the partition's outcome without rebuilding its conflict
// hypergraph: the positional values of the DC-referenced columns (the
// complete input of the coloring), the per-position FK assignment, the
// fresh keys minted (with whether each was actually appended to R̂2), and
// the fresh-key counter on entry. Partitions are keyed by combo id — the
// partition identity phase 1 assigns.
type solveMemo struct {
	parts map[int]*memoPart
}

type memoPart struct {
	n         int           // partition size (rows)
	vals      []table.Value // row-major: n × len(dcColIdx) DC-column values
	fk        []table.Value // per-position FK assignment
	minted    []mintRec
	enterNext int64 // freshKeys.next when the partition's serial tail began
	edges     int
	skipped   int
}

type mintRec struct {
	key      table.Value
	appended bool
}

func newSolveMemo() *solveMemo { return &solveMemo{parts: make(map[int]*memoPart)} }

// dcVals snapshots the DC-referenced column values of a partition's rows,
// row-major — the exact inputs the conflict builder and coloring consume.
func (p *prob) dcVals(rows []int) []table.Value {
	if len(p.dcColIdx) == 0 {
		return nil
	}
	out := make([]table.Value, 0, len(rows)*len(p.dcColIdx))
	for _, r := range rows {
		for _, j := range p.dcColIdx {
			out = append(out, p.vjoin.At(r, j))
		}
	}
	return out
}

// spliceable returns a retained memo entry whose coloring is provably
// identical to what this partition's coloring would compute. The conflict
// hypergraph, palette, and list-coloring of a partition are a pure
// function of (combo, the positional values of the DC-referenced columns
// across its rows, the coloring order option) — row identities never enter
// anywhere — so an entry matches when it has the same combo, the same
// size, and equal values position by position. The FK assignment then
// replays positionally. Memos are consulted newest first; what-if traffic
// that alternates deltas against one base typically matches an older memo
// after a revert. The fresh-key entry condition is checked later, in the
// serial tail, where the live counter is known.
func (p *prob) spliceable(pt partition) *memoPart {
	var want []table.Value // lazily computed once across memos
	for _, m := range p.priors {
		mp, ok := m.parts[pt.combo]
		if !ok || mp.n != len(pt.rows) {
			continue
		}
		if want == nil {
			want = p.dcVals(pt.rows)
		}
		match := true
		for i := range want {
			if want[i] != mp.vals[i] {
				match = false
				break
			}
		}
		if match {
			return mp
		}
	}
	return nil
}

// spliceFinish replays a memoized partition in the serial tail: re-mint the
// recorded fresh keys (appending the used ones to R̂2 in the original
// order) and write the recorded FK assignment. ok is false when the live
// fresh-key counter disagrees with the memo's entry state — the partition
// must then be recomputed. A disagreement after minting began is a bug
// guard surfaced as errSpliceDiverged.
func (ph *phase2) spliceFinish(pt partition, mp *memoPart, cap *solveMemo) (bool, error) {
	p := ph.p
	if len(mp.minted) > 0 && ph.fresh.next != mp.enterNext {
		return false, nil
	}
	enter := ph.fresh.next
	for _, m := range mp.minted {
		k := ph.fresh.mint()
		if k != m.key {
			return false, fmt.Errorf("%w: minted %v, memo %v", errSpliceDiverged, k, m.key)
		}
		if m.appended {
			ph.appendR2Tuple(k, pt.combo)
		}
	}
	p.stat.ConflictEdges += mp.edges
	p.stat.SkippedVertices += mp.skipped
	p.stat.SplicedPartitions++
	for li, ri := range pt.rows {
		key := mp.fk[li]
		ph.fk[ri] = key
		ph.keyRows[key] = append(ph.keyRows[key], ri)
	}
	if cap != nil {
		// The value matrix was verified equal, so the memo's slices carry
		// over verbatim; only the fresh-key entry point is re-stamped.
		cap.parts[pt.combo] = &memoPart{n: mp.n, vals: mp.vals, fk: mp.fk, minted: mp.minted,
			enterNext: enter, edges: mp.edges, skipped: mp.skipped}
	}
	return true, nil
}
