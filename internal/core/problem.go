package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/constraint"
	"repro/internal/table"
)

// newProb validates the input and derives the shared solver state,
// including the initialized join view of §3.1: a copy of R1's key and
// attribute columns with empty B columns.
func newProb(in Input, opt Options, stat *Stats) (*prob, error) {
	if in.R1 == nil || in.R2 == nil {
		return nil, fmt.Errorf("core: nil relation")
	}
	for _, c := range []struct {
		rel *table.Relation
		col string
	}{
		{in.R1, in.K1}, {in.R1, in.FK}, {in.R2, in.K2},
	} {
		if !c.rel.Schema().Has(c.col) {
			return nil, fmt.Errorf("core: %s has no column %q", c.rel.Name, c.col)
		}
	}
	p := &prob{in: in, opt: opt, rng: rand.New(rand.NewSource(opt.Seed)), stat: stat}

	for _, col := range in.R1.Schema().Names() {
		if col != in.K1 && col != in.FK {
			p.aCols = append(p.aCols, col)
		}
	}
	p.isR2Col = make(map[string]bool)
	for _, col := range in.R2.Schema().Names() {
		if col != in.K2 {
			p.bCols = append(p.bCols, col)
			p.isR2Col[col] = true
		}
	}
	// Reject ambiguous schemas: a B column shadowing an R1 column would make
	// CC predicates ambiguous on the join view.
	for _, col := range p.aCols {
		if p.isR2Col[col] {
			return nil, fmt.Errorf("core: column %q appears in both relations", col)
		}
	}
	for _, dc := range in.DCs {
		if err := dc.Validate(); err != nil {
			return nil, err
		}
		for _, a := range dc.Unary {
			if p.isR2Col[a.Col] {
				return nil, fmt.Errorf("core: DC %q references R2 column %q (foreign-key DCs are over R1)", dc.Name, a.Col)
			}
		}
	}

	// B columns actually used by the CC set; the solver only ever fills
	// these in V_Join (the paper's "in practice we only consider columns
	// used in S_CC").
	used := make(map[string]bool)
	p.ccR1s = make([][]table.Predicate, len(in.CCs))
	p.ccR2s = make([][]table.Predicate, len(in.CCs))
	for i, cc := range in.CCs {
		if cc.Target < 0 {
			return nil, fmt.Errorf("core: CC %d has negative target", i)
		}
		// Validate that every atom of every disjunct touches a known
		// non-key column.
		for _, d := range cc.Disjuncts() {
			for _, a := range d.Atoms {
				if !p.isR2Col[a.Col] && !in.R1.Schema().Has(a.Col) {
					return nil, fmt.Errorf("core: CC %d references unknown column %q", i, a.Col)
				}
				if a.Col == in.K1 || a.Col == in.K2 || a.Col == in.FK {
					return nil, fmt.Errorf("core: CC %d references key column %q (CCs are over non-key attributes)", i, a.Col)
				}
			}
		}
		p.ccR1s[i], p.ccR2s[i] = cc.PartAll(func(c string) bool { return p.isR2Col[c] })
		for _, r2 := range p.ccR2s[i] {
			for _, a := range r2.Atoms {
				used[a.Col] = true
			}
		}
	}
	for _, col := range p.bCols { // keep schema order
		if used[col] {
			p.usedBCols = append(p.usedBCols, col)
		}
	}

	// V_Join: K1 + A columns + all B columns (empty).
	var cols []table.Column
	s1 := in.R1.Schema()
	cols = append(cols, s1.Col(s1.MustIndex(in.K1)))
	for _, c := range p.aCols {
		cols = append(cols, s1.Col(s1.MustIndex(c)))
	}
	s2 := in.R2.Schema()
	for _, c := range p.bCols {
		cols = append(cols, s2.Col(s2.MustIndex(c)))
	}
	p.vjoin = table.NewRelation("VJoin", table.NewSchema(cols...))
	p.comboOf = make([]int, in.R1.Len())
	for i := range p.comboOf {
		p.comboOf[i] = -1
	}
	for i := 0; i < in.R1.Len(); i++ {
		row := make([]table.Value, 0, len(cols))
		row = append(row, in.R1.Value(i, in.K1))
		for _, c := range p.aCols {
			row = append(row, in.R1.Value(i, c))
		}
		for range p.bCols {
			row = append(row, table.Null())
		}
		if err := p.vjoin.Append(row...); err != nil {
			return nil, err
		}
	}

	// Active combos over usedBCols, with the R2 rows backing each combo.
	p.comboByKey = make(map[string]int)
	r2RowsByCombo := make(map[string][]int)
	for i := 0; i < in.R2.Len(); i++ {
		vals := make([]table.Value, len(p.usedBCols))
		for j, c := range p.usedBCols {
			vals[j] = in.R2.Value(i, c)
		}
		k := table.EncodeKey(vals...)
		if _, ok := p.comboByKey[k]; !ok {
			p.comboByKey[k] = len(p.combos)
			p.combos = append(p.combos, vals)
			p.comboKeys = append(p.comboKeys, k)
		}
		r2RowsByCombo[k] = append(r2RowsByCombo[k], i)
	}
	// Deterministic combo order.
	order := make([]int, len(p.combos))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return p.comboKeys[order[a]] < p.comboKeys[order[b]] })
	combos := make([][]table.Value, len(order))
	keys := make([]string, len(order))
	for i, o := range order {
		combos[i] = p.combos[o]
		keys[i] = p.comboKeys[o]
	}
	p.combos, p.comboKeys = combos, keys
	p.r2RowsBy = make([][]int, len(p.combos))
	for i, k := range p.comboKeys {
		p.comboByKey[k] = i
		p.r2RowsBy[i] = r2RowsByCombo[k]
	}
	// Candidate FK keys per combo (L of Algorithm 4), computed once here so
	// phase II never re-derives or re-sorts them. The slices are exactly
	// sized: appending fresh keys to a partition's palette reallocates
	// instead of clobbering this shared state.
	p.keysByCombo = make([][]table.Value, len(p.combos))
	for c, rows := range p.r2RowsBy {
		ks := make([]table.Value, 0, len(rows))
		for _, r := range rows {
			ks = append(ks, in.R2.Value(r, in.K2))
		}
		sort.Slice(ks, func(a, b int) bool { return table.Less(ks[a], ks[b]) })
		p.keysByCombo[c] = ks
	}
	p.compile()
	return p, nil
}

// compile builds the columnar snapshot of the join view's immutable columns
// and lowers every constraint onto it: CC R1-parts become ColPredicates,
// CC R2-parts become the per-combo boolean table, and DCs bind to the view's
// schema. After this point the per-row hot loops never consult a schema map
// or compare a string.
func (p *prob) compile() {
	immutable := append([]string{p.in.K1}, p.aCols...)
	p.colView = table.NewColumnar(p.vjoin, immutable...)

	// usedBCols positions, for lowering R2-part atoms onto combo tuples.
	colOf := make(map[string]int, len(p.usedBCols))
	for j, c := range p.usedBCols {
		colOf[c] = j
	}
	comboMatches := func(c int, r2Part table.Predicate) bool {
		for _, a := range r2Part.Atoms {
			j, ok := colOf[a.Col]
			if !ok || !a.Op.Apply(p.combos[c][j], a.Val) {
				return false
			}
		}
		return true
	}

	p.ccR1b = make([][]table.ColPredicate, len(p.in.CCs))
	p.ccComboMatch = make([][][]bool, len(p.in.CCs))
	for i := range p.in.CCs {
		p.ccR1b[i] = make([]table.ColPredicate, len(p.ccR1s[i]))
		p.ccComboMatch[i] = make([][]bool, len(p.ccR2s[i]))
		for d := range p.ccR1s[i] {
			p.ccR1b[i][d] = p.colView.Bind(p.ccR1s[i][d])
			match := make([]bool, len(p.combos))
			for c := range p.combos {
				match[c] = comboMatches(c, p.ccR2s[i][d])
			}
			p.ccComboMatch[i][d] = match
		}
	}

	p.boundDCs = constraint.BindDCs(p.in.DCs, p.vjoin.Schema())

	// Column indices any DC atom can read; the positional-value splice
	// check of the session path compares exactly these cells.
	dcCols := make(map[int]bool)
	for _, dc := range p.in.DCs {
		for _, a := range dc.Unary {
			if j, ok := p.vjoin.Schema().Index(a.Col); ok {
				dcCols[j] = true
			}
		}
		for _, a := range dc.Binary {
			for _, c := range []string{a.LCol, a.RCol} {
				if j, ok := p.vjoin.Schema().Index(c); ok {
					dcCols[j] = true
				}
			}
		}
	}
	p.dcColIdx = p.dcColIdx[:0]
	for j := range dcCols {
		p.dcColIdx = append(p.dcColIdx, j)
	}
	sort.Ints(p.dcColIdx)
}

// ensureDCCand fills dcCand: for every DC and tuple variable, the rows of
// V_Join passing that variable's unary filters. The filters only touch
// immutable columns, so one pass per solve replaces the per-partition scans
// Algorithm 4 used to do; the conflict builders and the invalid-tuple
// repair then filter candidates with a slice lookup.
func (p *prob) ensureDCCand() {
	if p.dcCand != nil || len(p.in.DCs) == 0 {
		return
	}
	n := p.vjoin.Len()
	p.dcCand = make([][][]bool, len(p.in.DCs))
	for di, dc := range p.in.DCs {
		byVar := make([][]bool, dc.K)
		for v := 0; v < dc.K; v++ {
			var atoms []table.Atom
			for _, a := range dc.Unary {
				if a.Var == v {
					atoms = append(atoms, table.Atom{Col: a.Col, Op: a.Op, Val: a.Val})
				}
			}
			cp := p.colView.Bind(table.Predicate{Atoms: atoms})
			bits := make([]bool, n)
			for i := 0; i < n; i++ {
				bits[i] = cp.Eval(i)
			}
			byVar[v] = bits
		}
		p.dcCand[di] = byVar
	}
	// Typed accessors for every column a binary DC atom compares; built
	// here (serially) so the concurrent sweep enumerators share them
	// without allocating closures per partition.
	p.intAccess = make(map[string]func(int) (int64, bool))
	for _, dc := range p.in.DCs {
		for _, a := range dc.Binary {
			for _, col := range []string{a.LCol, a.RCol} {
				if _, ok := p.intAccess[col]; !ok && p.vjoin.Schema().Has(col) {
					p.intAccess[col] = p.intColAccess(col)
				}
			}
		}
	}
}

// filled reports whether V_Join row i has every usedBCol assigned. Rows are
// only ever filled through assignCombo, so the combo index doubles as the
// fill flag (rows are trivially complete when no B column is in play).
func (p *prob) filled(i int) bool {
	return len(p.usedBCols) == 0 || p.comboOf[i] >= 0
}

// assignCombo writes combo c's values into row i's usedBCols and records
// the assignment.
func (p *prob) assignCombo(i, c int) {
	for j, col := range p.usedBCols {
		p.vjoin.Set(i, col, p.combos[c][j])
	}
	p.comboOf[i] = c
}

// comboUnused returns the combo indices that are irrelevant to every CC in
// the full constraint set: assigning them can never contribute to any CC
// count (line 14 of Algorithm 2). Every disjunct of every CC is consulted;
// disjuncts without R2 atoms are combo-independent and ignored.
func (p *prob) comboUnused() []int {
	var out []int
	for c := range p.combos {
		relevant := false
	scan:
		for i := range p.in.CCs {
			for d, r2 := range p.ccR2s[i] {
				if len(r2.Atoms) == 0 {
					continue
				}
				if p.ccComboMatch[i][d][c] {
					relevant = true
					break scan
				}
			}
		}
		if !relevant {
			out = append(out, c)
		}
	}
	return out
}
