package core

import (
	"fmt"
	"sort"

	"repro/internal/hypergraph"
	"repro/internal/table"
)

// phase2 completes R1.FK from the filled V_Join (Algorithm 4). It returns
// the per-row FK assignment (aligned with V_Join/R1 rows) and the augmented
// copy of R2.
type phase2 struct {
	p       *prob
	r2hat   *table.Relation
	fk      []table.Value
	keyRows map[table.Value][]int // FK value -> V_Join rows assigned so far
	fresh   *freshKeys

	// Scratch buffers for the invalid-tuple path (conflictsWithGroup runs
	// once per (tuple, key, DC) probe; rebuilding these per call dominated
	// its allocation profile). Only the serial tail uses them.
	poolBuf   []int
	assignBuf []int
	tuplesBuf [][]table.Value
}

// freshKeys mints primary-key values that do not collide with R2's keys.
type freshKeys struct {
	kind table.Type
	next int64
	used map[table.Value]bool
}

func newFreshKeys(r2 *table.Relation, k2 string) *freshKeys {
	f := &freshKeys{kind: r2.Schema().Col(r2.Schema().MustIndex(k2)).Type, used: make(map[table.Value]bool)}
	for i := 0; i < r2.Len(); i++ {
		v := r2.Value(i, k2)
		f.used[v] = true
		if v.Kind() == table.KindInt && v.Int() >= f.next {
			f.next = v.Int() + 1
		}
	}
	return f
}

func (f *freshKeys) mint() table.Value {
	for {
		var v table.Value
		if f.kind == table.TypeInt {
			v = table.Int(f.next)
		} else {
			v = table.String(fmt.Sprintf("synthetic_%d", f.next))
		}
		f.next++
		if !f.used[v] {
			f.used[v] = true
			return v
		}
	}
}

// partition is one phase-II unit of work: the V_Join rows that phase I
// assigned the same B-value combination, identified by the combo id
// (-1 for the trivial partition when R2 has no active combos).
type partition struct {
	combo int
	rows  []int
}

// partitions groups the filled V_Join rows by their assigned combo and
// returns the groups in canonical (sorted-key) order plus the unfilled
// (invalid) rows. Rows carry their combo index from phase I, so discovery
// is a single O(n) scan with no value re-encoding, and — combo order being
// key-sorted already — no sort either.
func (p *prob) partitions() (parts []partition, invalid []int) {
	if len(p.usedBCols) == 0 {
		// Every row is trivially complete; one partition under the empty
		// combo (whose backing R2 rows are all of R2).
		if p.vjoin.Len() == 0 {
			return nil, nil
		}
		rows := make([]int, p.vjoin.Len())
		for i := range rows {
			rows[i] = i
		}
		c0 := -1
		if c, ok := p.comboByKey[table.EncodeKey()]; ok {
			c0 = c
		}
		return []partition{{combo: c0, rows: rows}}, nil
	}
	rowsBy := make([][]int, len(p.combos))
	for i := 0; i < p.vjoin.Len(); i++ {
		c := p.comboOf[i]
		if c < 0 {
			invalid = append(invalid, i)
			continue
		}
		rowsBy[c] = append(rowsBy[c], i)
	}
	for c, rows := range rowsBy {
		if len(rows) > 0 {
			parts = append(parts, partition{combo: c, rows: rows})
		}
	}
	return parts, invalid
}

func (p *prob) runPhase2() (*phase2, error) {
	ph := &phase2{
		p:       p,
		r2hat:   p.in.R2.Clone(),
		fk:      make([]table.Value, p.vjoin.Len()),
		keyRows: make(map[table.Value][]int),
		fresh:   newFreshKeys(p.in.R2, p.in.K2),
	}
	ph.r2hat.Name = p.in.R2.Name

	parts, invalid := p.partitions()
	p.stat.InvalidTuples = len(invalid)

	if p.opt.RandomFK {
		ph.assignRandom(parts, invalid)
		return ph, nil
	}
	p.ensureDCCand()

	tColor := now()
	var err error
	if p.opt.NoPartition {
		err = ph.colorGlobal(parts)
	} else {
		err = ph.colorPartitions(parts)
	}
	p.stat.Coloring = since(tColor)
	p.trace.Span("coloring", tColor, p.stat.Coloring)
	if err != nil {
		return nil, err
	}
	if len(invalid) > 0 {
		ph.solveInvalidTuples(invalid)
	}
	return ph, nil
}

// partitionKeys returns the candidate FK values for a partition: the keys
// of R̂2 rows whose usedBCols match the partition combo (L in Algorithm 4).
// The list was computed and sorted once during problem setup; callers must
// not mutate it in place.
func (ph *phase2) partitionKeys(combo int) []table.Value {
	if combo < 0 {
		return nil
	}
	return ph.p.keysByCombo[combo]
}

// buildConflicts adds, for every DC, an edge per tuple set of the partition
// that satisfies the DC's explicit predicate (Def. 5.1). rows holds V_Join
// row indices; edges use local indices into rows. Candidate lists come from
// the precomputed per-(DC, variable) unary-filter bitsets, and the pair
// loops evaluate only the bound binary atoms (the unary part is already
// guaranteed by candidate membership).
func (ph *phase2) buildConflicts(g *hypergraph.Graph, rows []int) {
	p := ph.p
	for di := range p.boundDCs {
		dc := &p.boundDCs[di]
		// Per-variable candidate lists via the unary filters, exact-sized
		// from a counting pass over the bitsets.
		cands := make([][]int, dc.K)
		for v := 0; v < dc.K; v++ {
			bits := p.dcCand[di][v]
			cnt := 0
			for _, ri := range rows {
				if bits[ri] {
					cnt++
				}
			}
			list := make([]int, 0, cnt)
			for li, ri := range rows {
				if bits[ri] {
					list = append(list, li)
				}
			}
			cands[v] = list
		}
		switch dc.K {
		case 2:
			spec := p.in.DCs[di]
			switch {
			case len(spec.Binary) == 0:
				// Pure-unary pair DC (e.g. "no two owners share a home"):
				// the unary filters already decide everything, so the edge
				// set is the complete bipartite graph over the candidate
				// lists (a clique when symmetric). No per-pair evaluation.
				if dc.Symmetric01 {
					for ai, a := range cands[0] {
						for _, b := range cands[0][ai+1:] {
							g.AddPair(a, b)
						}
					}
				} else {
					for _, a := range cands[0] {
						for _, b := range cands[1] {
							if a != b {
								g.AddPair(a, b)
							}
						}
					}
				}
			case len(spec.Binary) == 1 && sweepable(spec.Binary[0], p.vjoin.Schema()):
				ph.sweepEdges(g, spec.Binary[0], cands, rows)
			default:
				if dc.Symmetric01 {
					for ai, a := range cands[0] {
						for _, b := range cands[0][ai+1:] {
							if dc.HoldsBinary(p.vjoin.Row(rows[a]), p.vjoin.Row(rows[b])) {
								g.AddPair(a, b)
							}
						}
					}
				} else {
					for _, a := range cands[0] {
						for _, b := range cands[1] {
							if a == b {
								continue
							}
							if dc.HoldsBinary(p.vjoin.Row(rows[a]), p.vjoin.Row(rows[b])) {
								g.AddPair(a, b)
							}
						}
					}
				}
			}
		default:
			tuples := make([][]table.Value, dc.K)
			ph.enumEdges(g, dc.K, cands, func(assign []int) bool {
				for v, li := range assign {
					tuples[v] = p.vjoin.Row(rows[li])
				}
				return dc.HoldsBinary(tuples...)
			})
		}
	}
}

// enumEdges enumerates ordered assignments of distinct partition tuples to
// the K variables of a DC, adding an edge for each satisfying set.
func (ph *phase2) enumEdges(g *hypergraph.Graph, k int, cands [][]int, holds func([]int) bool) {
	assign := make([]int, k)
	var rec func(v int)
	rec = func(v int) {
		if v == k {
			if holds(assign) {
				g.AddEdge(assign...)
			}
			return
		}
		for _, li := range cands[v] {
			dup := false
			for _, prev := range assign[:v] {
				if prev == li {
					dup = true
					break
				}
			}
			if !dup {
				assign[v] = li
				rec(v + 1)
			}
		}
	}
	rec(0)
}

// colorGlobal is the NoPartition ablation: one conflict hypergraph over all
// filled tuples with per-vertex candidate lists.
func (ph *phase2) colorGlobal(parts []partition) error {
	p := ph.p
	var rows []int
	var rowCombo []int // combo id per local vertex, aligned with rows
	for _, pt := range parts {
		for _, r := range pt.rows {
			rows = append(rows, r)
			rowCombo = append(rowCombo, pt.combo)
		}
	}
	p.stat.Partitions = 1
	g := hypergraph.New(len(rows))
	ph.buildConflicts(g, rows)
	p.stat.ConflictEdges += g.NumEdges()

	// Global palette: all keys, indexed; per-vertex allowed lists pick the
	// keys matching the vertex's combo.
	var palette []table.Value
	idxByCombo := make(map[int][]int)
	for _, pt := range parts {
		for _, kv := range ph.partitionKeys(pt.combo) {
			idxByCombo[pt.combo] = append(idxByCombo[pt.combo], len(palette))
			palette = append(palette, kv)
		}
	}
	allowed := func(v int) []int { return idxByCombo[rowCombo[v]] }
	coloring := hypergraph.NewColoring(len(rows))
	var skipped []int
	if p.opt.Order == OrderInput {
		coloring, skipped = g.ColoringInputOrder(coloring, allowed)
	} else {
		coloring, skipped = g.ColoringLF(coloring, allowed)
	}
	p.stat.SkippedVertices += len(skipped)
	if len(skipped) > 0 {
		freshByCombo := make(map[int][]int)
		for _, v := range skipped {
			ck := rowCombo[v]
			palette = append(palette, ph.fresh.mint())
			freshByCombo[ck] = append(freshByCombo[ck], len(palette)-1)
		}
		allowedFresh := func(v int) []int { return freshByCombo[rowCombo[v]] }
		var left []int
		if p.opt.Order == OrderInput {
			coloring, left = g.ColoringInputOrder(coloring, allowedFresh)
		} else {
			coloring, left = g.ColoringLF(coloring, allowedFresh)
		}
		if len(left) > 0 {
			return fmt.Errorf("core: phase 2 (global): %d vertices uncolorable", len(left))
		}
		used := make(map[int]bool)
		for _, c := range coloring {
			used[c] = true
		}
		// Canonical combo order, not map order: R̂2 row order must be
		// deterministic for the same seed.
		for _, pt := range parts {
			for _, fi := range freshByCombo[pt.combo] {
				if used[fi] {
					ph.appendR2Tuple(palette[fi], pt.combo)
				}
			}
		}
	}
	for li, ri := range rows {
		key := palette[coloring[li]]
		ph.fk[ri] = key
		ph.keyRows[key] = append(ph.keyRows[key], ri)
	}
	return nil
}

// appendR2Tuple adds a fresh household to R̂2: the minted key, the
// partition's usedBCols values, and the remaining B columns copied from an
// existing row of the same combo (or null when the combo has no backing
// row, which cannot happen for active combos). combo is -1 when there is no
// active combo to copy from.
func (ph *phase2) appendR2Tuple(key table.Value, combo int) {
	p := ph.p
	row := make([]table.Value, ph.r2hat.Schema().Len())
	for i := range row {
		row[i] = table.Null()
	}
	row[ph.r2hat.Schema().MustIndex(p.in.K2)] = key
	if combo >= 0 {
		if backing := p.r2RowsBy[combo]; len(backing) > 0 {
			src := p.in.R2.Row(backing[0])
			for _, c := range p.bCols {
				j := ph.r2hat.Schema().MustIndex(c)
				row[j] = src[p.in.R2.Schema().MustIndex(c)]
			}
		}
		for j, c := range p.usedBCols {
			row[ph.r2hat.Schema().MustIndex(c)] = p.combos[combo][j]
		}
	}
	ph.r2hat.MustAppend(row...)
	p.stat.AddedR2Tuples++
}

// conflictsWithGroup reports whether adding V_Join row t to the set of rows
// already holding one FK value would violate any DC. The candidate pool and
// assignment run out of phase2-owned scratch buffers; unary filtering is a
// bitset lookup and the leaf check evaluates only the bound binary atoms.
func (ph *phase2) conflictsWithGroup(t int, group []int) bool {
	p := ph.p
	ph.poolBuf = append(append(ph.poolBuf[:0], group...), t)
	pool := ph.poolBuf
	for di := range p.boundDCs {
		dc := &p.boundDCs[di]
		if len(pool) < dc.K {
			continue
		}
		if cap(ph.assignBuf) < dc.K {
			ph.assignBuf = make([]int, dc.K)
			ph.tuplesBuf = make([][]table.Value, dc.K)
		}
		assign := ph.assignBuf[:dc.K]
		tuples := ph.tuplesBuf[:dc.K]
		cand := p.dcCand[di]
		var rec func(v int, usedT bool) bool
		rec = func(v int, usedT bool) bool {
			if v == dc.K {
				if !usedT {
					return false // only new violations involving t matter
				}
				for i, r := range assign {
					tuples[i] = p.vjoin.Row(r)
				}
				return dc.HoldsBinary(tuples...)
			}
			for _, r := range pool {
				dup := false
				for _, prev := range assign[:v] {
					if prev == r {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				if !cand[v][r] {
					continue
				}
				assign[v] = r
				if rec(v+1, usedT || r == t) {
					return true
				}
			}
			return false
		}
		if rec(0, false) {
			return true
		}
	}
	return false
}

// solveInvalidTuples (Algorithm 4, line 16): each invalid tuple gets the
// combo minimizing the marginal CC error; existing keys of that combo are
// tried in order under DC checks, and a fresh key is minted otherwise.
func (ph *phase2) solveInvalidTuples(invalid []int) {
	p := ph.p
	counter := newCCCounter(p)
	const maxKeysTried = 256
	for _, t := range invalid {
		// Rank combos by CC-error delta; unused combos have delta 0. The
		// counter caches t's per-disjunct R1 matches once, so each combo's
		// delta is table lookups.
		counter.prepare(t)
		type cand struct {
			combo int
			delta float64
		}
		cands := make([]cand, 0, len(p.combos))
		for c := range p.combos {
			cands = append(cands, cand{combo: c, delta: counter.delta(c)})
		}
		sort.SliceStable(cands, func(a, b int) bool { return cands[a].delta < cands[b].delta })

		assignedKey := table.Null()
		chosenCombo := -1
		for _, cd := range cands {
			if cd.delta > cands[0].delta {
				break // only consider minimum-error combos for existing keys
			}
			tried := 0
			for _, r2row := range p.r2RowsBy[cd.combo] {
				if tried >= maxKeysTried {
					break
				}
				tried++
				key := p.in.R2.Value(r2row, p.in.K2)
				if ph.conflictsWithGroup(t, ph.keyRows[key]) {
					continue
				}
				assignedKey = key
				chosenCombo = cd.combo
				break
			}
			if !assignedKey.IsNull() {
				break
			}
		}
		if assignedKey.IsNull() {
			// Fresh household with the minimum-error combo.
			chosenCombo = -1
			if len(cands) > 0 {
				chosenCombo = cands[0].combo
			}
			assignedKey = ph.fresh.mint()
			ph.appendR2Tuple(assignedKey, chosenCombo)
		}
		if chosenCombo >= 0 && len(p.usedBCols) > 0 {
			p.assignCombo(t, chosenCombo)
			counter.commit(chosenCombo)
		}
		ph.fk[t] = assignedKey
		ph.keyRows[assignedKey] = append(ph.keyRows[assignedKey], t)
	}
}

// assignRandom is the baselines' phase II: each tuple takes a uniformly
// random candidate FK; DCs are ignored entirely.
func (ph *phase2) assignRandom(parts []partition, invalid []int) {
	p := ph.p
	p.stat.Partitions = len(parts)
	for _, pt := range parts {
		cand := ph.partitionKeys(pt.combo)
		for _, ri := range pt.rows {
			var key table.Value
			if len(cand) > 0 {
				key = cand[p.rng.Intn(len(cand))]
			} else {
				key = ph.fresh.mint()
				ph.appendR2Tuple(key, pt.combo)
			}
			ph.fk[ri] = key
			ph.keyRows[key] = append(ph.keyRows[key], ri)
		}
	}
	// Invalid tuples: random combo, then random key within it.
	for _, t := range invalid {
		if len(p.combos) == 0 {
			key := ph.fresh.mint()
			ph.appendR2Tuple(key, -1)
			ph.fk[t] = key
			continue
		}
		c := p.rng.Intn(len(p.combos))
		if len(p.usedBCols) > 0 {
			p.assignCombo(t, c)
		}
		rows := p.r2RowsBy[c]
		key := p.in.R2.Value(rows[p.rng.Intn(len(rows))], p.in.K2)
		ph.fk[t] = key
		ph.keyRows[key] = append(ph.keyRows[key], t)
	}
}
