package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/constraint"
	"repro/internal/table"
)

// fingerprintVersion tags the canonical encoding; bump it whenever the
// encoding (or anything the solver's output depends on) changes shape, so
// stale persisted cache entries can never be served for a new format.
const fingerprintVersion = "linksynth-fp-v1"

// Fingerprint returns the SHA-256 content address of a solver instance:
// two (Input, Options) pairs share a key iff the canonical encodings of
// their relations, constraints and output-relevant options agree, and every
// such pair is guaranteed the byte-identical *Result. The encoding covers
// relation names, schemas and rows, K1/K2/FK, the constraint sets rendered
// through the DSL with names elided (constraint.CanonicalConstraints), and
// all Options fields except Workers — the pool size never changes the
// output (see Options.Workers), so a sequential and a parallel solve of the
// same instance share one cache entry. A nonzero ILP.TimeLimit voids the
// solver's determinism promise; it is part of the key, but callers that
// need strict reproducibility should not cache under it.
func Fingerprint(in Input, opt Options) ([32]byte, error) {
	var key [32]byte
	h := sha256.New()
	writeString(h, fingerprintVersion)
	writeString(h, in.K1)
	writeString(h, in.K2)
	writeString(h, in.FK)
	if err := writeRelation(h, in.R1); err != nil {
		return key, fmt.Errorf("core: fingerprint R1: %w", err)
	}
	if err := writeRelation(h, in.R2); err != nil {
		return key, fmt.Errorf("core: fingerprint R2: %w", err)
	}
	writeString(h, constraint.CanonicalConstraints(in.CCs, in.DCs))

	writeUint(h, uint64(opt.Mode))
	writeBool(h, opt.NoMarginals)
	writeBool(h, opt.RandomFK)
	writeBool(h, opt.NoPartition)
	writeUint(h, uint64(opt.Order))
	writeUint(h, uint64(opt.Seed))
	writeUint(h, uint64(opt.ILP.MaxNodes))
	writeUint(h, uint64(opt.ILP.MaxIters))
	writeUint(h, uint64(opt.ILP.TimeLimit))

	h.Sum(key[:0])
	return key, nil
}

// writeRelation encodes name, schema and rows. Strings are length-prefixed
// and values carry a kind tag, so no two distinct relations share an
// encoding.
func writeRelation(w io.Writer, r *table.Relation) error {
	if r == nil {
		return fmt.Errorf("nil relation")
	}
	writeString(w, r.Name)
	s := r.Schema()
	writeUint(w, uint64(s.Len()))
	for j := 0; j < s.Len(); j++ {
		c := s.Col(j)
		writeString(w, c.Name)
		writeUint(w, uint64(c.Type))
	}
	writeUint(w, uint64(r.Len()))
	for i := 0; i < r.Len(); i++ {
		for _, v := range r.Row(i) {
			writeUint(w, uint64(v.Kind()))
			switch v.Kind() {
			case table.KindInt:
				writeUint(w, uint64(v.Int()))
			case table.KindString:
				writeString(w, v.Str())
			}
		}
	}
	return nil
}

func writeString(w io.Writer, s string) {
	writeUint(w, uint64(len(s)))
	io.WriteString(w, s)
}

func writeUint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeBool(w io.Writer, b bool) {
	if b {
		writeUint(w, 1)
	} else {
		writeUint(w, 0)
	}
}
