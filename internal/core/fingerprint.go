package core

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/constraint"
	"repro/internal/table"
)

// fingerprintVersion tags the canonical encoding; bump it whenever the
// encoding (or anything the solver's output depends on) changes shape, so
// stale persisted cache entries can never be served for a new format.
const fingerprintVersion = "linksynth-fp-v1"

// Fingerprint returns the SHA-256 content address of a solver instance:
// two (Input, Options) pairs share a key iff the canonical encodings of
// their relations, constraints and output-relevant options agree, and every
// such pair is guaranteed the byte-identical *Result. The encoding covers
// relation names, schemas and rows, K1/K2/FK, the constraint sets rendered
// through the DSL with names elided (constraint.CanonicalConstraints), and
// all Options fields except Workers — the pool size never changes the
// output (see Options.Workers), so a sequential and a parallel solve of the
// same instance share one cache entry. A nonzero ILP.TimeLimit voids the
// solver's determinism promise; it is part of the key, but callers that
// need strict reproducibility should not cache under it.
func Fingerprint(in Input, opt Options) ([32]byte, error) {
	var key [32]byte
	h := sha256.New()
	// The encoding is thousands of tiny writes (a varint per cell); a
	// buffer in front of the hash turns them into a few block updates,
	// cutting the fingerprint cost of a large instance by an order of
	// magnitude.
	bw := bufio.NewWriterSize(h, 1<<12)
	writeString(bw, fingerprintVersion)
	writeString(bw, in.K1)
	writeString(bw, in.K2)
	writeString(bw, in.FK)
	if err := writeRelation(bw, in.R1); err != nil {
		return key, fmt.Errorf("core: fingerprint R1: %w", err)
	}
	if err := writeRelation(bw, in.R2); err != nil {
		return key, fmt.Errorf("core: fingerprint R2: %w", err)
	}
	writeString(bw, constraint.CanonicalConstraints(in.CCs, in.DCs))

	writeOptions(bw, opt)
	if err := bw.Flush(); err != nil {
		return key, err
	}

	h.Sum(key[:0])
	return key, nil
}

// writeRelation encodes name, schema and rows. Strings are length-prefixed
// and values carry a kind tag, so no two distinct relations share an
// encoding.
func writeRelation(w io.Writer, r *table.Relation) error {
	if r == nil {
		return fmt.Errorf("nil relation")
	}
	writeString(w, r.Name)
	s := r.Schema()
	writeUint(w, uint64(s.Len()))
	for j := 0; j < s.Len(); j++ {
		c := s.Col(j)
		writeString(w, c.Name)
		writeUint(w, uint64(c.Type))
	}
	writeUint(w, uint64(r.Len()))
	for i := 0; i < r.Len(); i++ {
		for _, v := range r.Row(i) {
			writeUint(w, uint64(v.Kind()))
			switch v.Kind() {
			case table.KindInt:
				writeUint(w, uint64(v.Int()))
			case table.KindString:
				writeString(w, v.Str())
			}
		}
	}
	return nil
}

func writeString(w io.Writer, s string) {
	writeUint(w, uint64(len(s)))
	io.WriteString(w, s)
}

func writeUint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeBool(w io.Writer, b bool) {
	if b {
		writeUint(w, 1)
	} else {
		writeUint(w, 0)
	}
}

// structuralVersion tags the canonical structural encoding; bump it whenever
// the encoding (or anything the compiled plan depends on) changes shape.
const structuralVersion = "linksynth-sfp-v1"

// StructuralFingerprint returns the SHA-256 address of an instance's
// *structure*: the schemas, key/FK wiring, canonical constraint sets, and
// all output-relevant Options — with the row data excluded. It is the key
// of the compiled-plan cache: two instances share a structural fingerprint
// iff the expensive data-independent compilation artifacts (CC pairwise
// classification, hybrid split, Hasse forest shape) are interchangeable
// between them.
//
// Unlike Fingerprint, the encoding is canonicalized for order: schema
// columns are hashed as a sorted (name, type) set and constraints are
// hashed as sorted canonical renders, so declaring columns or constraints
// in a different order yields the same key. It stays sensitive to anything
// that changes the compiled structure or the solve semantics: constraint
// predicates and bounds (targets), the key/FK column names, and every
// output-relevant Option (mode, order, seed, ILP budgets). Relation names
// and rows are excluded.
func StructuralFingerprint(in Input, opt Options) ([32]byte, error) {
	var key [32]byte
	if in.R1 == nil || in.R2 == nil {
		return key, fmt.Errorf("core: structural fingerprint: nil relation")
	}
	h := sha256.New()
	writeString(h, structuralVersion)
	writeString(h, in.K1)
	writeString(h, in.K2)
	writeString(h, in.FK)
	writeSchemaSet(h, in.R1.Schema())
	writeSchemaSet(h, in.R2.Schema())

	ccs := canonicalCCRenders(in.CCs)
	writeUint(h, uint64(len(ccs)))
	for _, s := range ccs {
		writeString(h, s)
	}
	dcs := make([]string, len(in.DCs))
	for i, dc := range in.DCs {
		dc.Name = ""
		dcs[i] = constraint.RenderDC(dc)
	}
	sort.Strings(dcs)
	writeUint(h, uint64(len(dcs)))
	for _, s := range dcs {
		writeString(h, s)
	}

	writeOptions(h, opt)

	h.Sum(key[:0])
	return key, nil
}

// writeOptions hashes every output-relevant Options field — shared by
// Fingerprint and StructuralFingerprint so the two keys can never drift in
// option sensitivity. Workers is deliberately absent (the pool size never
// changes the output).
func writeOptions(w io.Writer, opt Options) {
	writeUint(w, uint64(opt.Mode))
	writeBool(w, opt.NoMarginals)
	writeBool(w, opt.RandomFK)
	writeBool(w, opt.NoPartition)
	writeUint(w, uint64(opt.Order))
	writeUint(w, uint64(opt.Seed))
	writeUint(w, uint64(opt.ILP.MaxNodes))
	writeUint(w, uint64(opt.ILP.MaxIters))
	writeUint(w, uint64(opt.ILP.TimeLimit))
}

// writeSchemaSet hashes a schema as an order-independent set of
// (name, type) pairs.
func writeSchemaSet(w io.Writer, s *table.Schema) {
	cols := make([]string, s.Len())
	for j := 0; j < s.Len(); j++ {
		c := s.Col(j)
		cols[j] = fmt.Sprintf("%s\x00%d", c.Name, c.Type)
	}
	sort.Strings(cols)
	writeUint(w, uint64(len(cols)))
	for _, c := range cols {
		writeString(w, c)
	}
}

// canonicalCCRenders returns the name-elided DSL render of every CC, sorted.
func canonicalCCRenders(ccs []constraint.CC) []string {
	out := make([]string, len(ccs))
	for i, cc := range ccs {
		cc.Name = ""
		out[i] = constraint.RenderCC(cc)
	}
	sort.Strings(out)
	return out
}
