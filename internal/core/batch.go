package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/sched"
)

// SolveBatch solves many C-Extension instances over one shared bounded
// worker pool, amortizing scheduling across the whole workload: whole
// instances fan out first, and each instance's parallel stages (Hasse
// subtrees, ILP blocks, partition coloring) reuse any pool capacity the
// instance mix leaves free. opt applies to every instance; opt.Workers is
// the parallelism target for the whole batch, not for one instance (the
// pool's inline-fallback rule means it is approximate, not a hard CPU cap
// — see internal/sched).
//
// The returned slice is positionally aligned with inputs. Instance
// failures are isolated: a failing instance leaves a nil Result and
// contributes its error — annotated with the instance index — to the
// joined error; the remaining instances still solve. Cancellation is
// checked at instance boundaries and inside each instance at the solver's
// phase boundaries: once ctx is done no new instance starts, unstarted
// instances report ctx.Err(), and in-flight instances stop within one
// phase. Each completed instance's output is byte-identical to a
// standalone Solve(inputs[i], opt).
func SolveBatch(ctx context.Context, inputs []Input, opt Options) ([]*Result, error) {
	return SolveBatchOn(ctx, inputs, opt, PoolFor(opt))
}

// SolveBatchOn is SolveBatch against a caller-owned worker pool (nil runs
// fully sequentially), ignoring opt.Workers: servers share one pool across
// every batch and every single solve so that concurrent callers never
// oversubscribe the host.
func SolveBatchOn(ctx context.Context, inputs []Input, opt Options, pool *sched.Pool) ([]*Result, error) {
	results := make([]*Result, len(inputs))
	errs := make([]error, len(inputs))
	pool.ForEach(len(inputs), func(i int) {
		if err := ctxErr(ctx); err != nil {
			errs[i] = fmt.Errorf("core: batch instance %d: %w", i, err)
			return
		}
		res, err := solveOnPool(ctx, inputs[i], opt, pool)
		if err != nil {
			errs[i] = fmt.Errorf("core: batch instance %d: %w", i, err)
			return
		}
		results[i] = res
	})
	return results, errors.Join(errs...)
}
