package core

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/table"
)

func fpInstance() Input {
	r1 := table.NewRelation("R1", table.NewSchema(
		table.IntCol("pid"), table.StrCol("Rel"), table.IntCol("hid")))
	r1.MustAppend(table.Int(1), table.String("Owner"), table.Null())
	r1.MustAppend(table.Int(2), table.String("Spouse"), table.Null())
	r2 := table.NewRelation("R2", table.NewSchema(
		table.IntCol("hid"), table.StrCol("Area")))
	r2.MustAppend(table.Int(10), table.String("North"))
	r2.MustAppend(table.Int(11), table.String("South"))
	cc, err := constraint.ParseCC("cc north: count(Area = 'North') = 1")
	if err != nil {
		panic(err)
	}
	dc, err := constraint.ParseDC("dc one_owner: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'")
	if err != nil {
		panic(err)
	}
	return Input{R1: r1, R2: r2, K1: "pid", K2: "hid", FK: "hid",
		CCs: []constraint.CC{cc}, DCs: []constraint.DC{dc}}
}

func TestFingerprintStable(t *testing.T) {
	a, err := Fingerprint(fpInstance(), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint(fpInstance(), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same instance hashed differently: %x vs %x", a, b)
	}
}

func TestFingerprintIgnoresWorkersAndNames(t *testing.T) {
	base, _ := Fingerprint(fpInstance(), Options{Seed: 7})
	par, _ := Fingerprint(fpInstance(), Options{Seed: 7, Workers: 8})
	if base != par {
		t.Errorf("Workers changed the key: output is byte-identical across pool sizes")
	}
	renamed := fpInstance()
	renamed.CCs[0].Name = "something_else"
	renamed.DCs[0].Name = ""
	rn, _ := Fingerprint(renamed, Options{Seed: 7})
	if base != rn {
		t.Errorf("constraint names changed the key; they never change the output")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base, _ := Fingerprint(fpInstance(), Options{Seed: 7})
	seen := map[[32]byte]string{base: "base"}
	check := func(label string, in Input, opt Options) {
		t.Helper()
		k, err := Fingerprint(in, opt)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s", label, prev)
		}
		seen[k] = label
	}

	check("seed", fpInstance(), Options{Seed: 8})
	check("mode", fpInstance(), Options{Seed: 7, Mode: ModeILPOnly})
	check("random-fk", fpInstance(), Options{Seed: 7, RandomFK: true})

	row := fpInstance()
	row.R1.MustAppend(table.Int(3), table.String("Owner"), table.Null())
	check("extra R1 row", row, Options{Seed: 7})

	cell := fpInstance()
	cell.R2.Set(0, "Area", table.String("East"))
	check("changed R2 cell", cell, Options{Seed: 7})

	cons := fpInstance()
	cons.CCs[0].Target = 2
	check("changed CC target", cons, Options{Seed: 7})

	noDC := fpInstance()
	noDC.DCs = nil
	check("dropped DC", noDC, Options{Seed: 7})

	keys := fpInstance()
	keys.FK = "pid"
	check("different FK column", keys, Options{Seed: 7})
}

func TestFingerprintNilRelation(t *testing.T) {
	in := fpInstance()
	in.R2 = nil
	if _, err := Fingerprint(in, Options{}); err == nil {
		t.Fatal("want error for nil relation")
	}
}

// sfpInstance builds a richer instance for structural-fingerprint
// property tests: several CCs and DCs over a census-shaped schema.
func sfpInstance(nCC int, _ int64) Input {
	in := fpInstance()
	for i := 0; i < nCC; i++ {
		cc, err := constraint.ParseCC("cc: count(Rel = 'Owner', Area = 'North') = " + fmtInt(int64(10+i)))
		if err != nil {
			panic(err)
		}
		in.CCs = append(in.CCs, cc)
	}
	return in
}

func fmtInt(v int64) string {
	return string([]byte{byte('0' + v/10), byte('0' + v%10)})
}

func mustSFP(t *testing.T, in Input, opt Options) [32]byte {
	t.Helper()
	k, err := StructuralFingerprint(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestStructuralFingerprintOrderInvariance: reordering constraint
// declarations or schema columns must not change the structural key, and
// changing the row data must not either.
func TestStructuralFingerprintOrderInvariance(t *testing.T) {
	opt := Options{Seed: 7}
	base := mustSFP(t, sfpInstance(4, 1), opt)

	// Constraint declaration order.
	perm := sfpInstance(4, 1)
	perm.CCs[0], perm.CCs[3] = perm.CCs[3], perm.CCs[0]
	perm.CCs[1], perm.CCs[2] = perm.CCs[2], perm.CCs[1]
	if got := mustSFP(t, perm, opt); got != base {
		t.Errorf("CC declaration order changed the structural key")
	}

	// Column declaration order (same columns, different schema order).
	reord := sfpInstance(4, 1)
	r1 := table.NewRelation("R1", table.NewSchema(
		table.StrCol("Rel"), table.IntCol("pid"), table.IntCol("hid")))
	r1.MustAppend(table.String("Owner"), table.Int(1), table.Null())
	reord.R1 = r1
	if got := mustSFP(t, reord, opt); got != base {
		t.Errorf("column declaration order changed the structural key")
	}

	// Row data: excluded entirely.
	data := sfpInstance(4, 1)
	data.R1 = data.R1.Clone()
	data.R1.Set(0, "Rel", table.String("Spouse"))
	data.R1.MustAppend(table.Int(99), table.String("Child"), table.Null())
	if got := mustSFP(t, data, opt); got != base {
		t.Errorf("row data changed the structural key")
	}

	// Relation names: excluded.
	named := sfpInstance(4, 1)
	named.R1 = named.R1.Clone()
	named.R1.Name = "Persons2026"
	if got := mustSFP(t, named, opt); got != base {
		t.Errorf("relation name changed the structural key")
	}

	// Constraint names: excluded.
	cn := sfpInstance(4, 1)
	cn.CCs[0].Name = "renamed"
	cn.DCs[0].Name = ""
	if got := mustSFP(t, cn, opt); got != base {
		t.Errorf("constraint names changed the structural key")
	}

	// Workers: excluded (parallelism never changes output or structure).
	if got := mustSFP(t, sfpInstance(4, 1), Options{Seed: 7, Workers: 8}); got != base {
		t.Errorf("Options.Workers changed the structural key")
	}
}

// TestStructuralFingerprintSensitivity: bounds (CC targets), mode, seed,
// order, predicates, and schema content must all change the key.
func TestStructuralFingerprintSensitivity(t *testing.T) {
	opt := Options{Seed: 7}
	base := mustSFP(t, sfpInstance(4, 1), opt)
	seen := map[[32]byte]string{base: "base"}
	check := func(name string, k [32]byte) {
		t.Helper()
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collided with %s: the structural key must be sensitive to it", name, prev)
		}
		seen[k] = name
	}

	bound := sfpInstance(4, 1)
	bound.CCs[0].Target++
	check("CC bound (target)", mustSFP(t, bound, opt))

	pred := sfpInstance(4, 1)
	pred.CCs[0].Pred.Atoms[0].Val = table.String("South")
	check("CC predicate", mustSFP(t, pred, opt))

	check("mode", mustSFP(t, sfpInstance(4, 1), Options{Mode: ModeILPOnly, Seed: 7}))
	check("seed", mustSFP(t, sfpInstance(4, 1), Options{Seed: 8}))
	check("order", mustSFP(t, sfpInstance(4, 1), Options{Seed: 7, Order: OrderInput}))

	fk := sfpInstance(4, 1)
	fk.FK = "pid"
	check("FK column", mustSFP(t, fk, opt))

	col := sfpInstance(4, 1)
	r1 := table.NewRelation("R1", table.NewSchema(
		table.IntCol("pid"), table.StrCol("Rel"), table.IntCol("Age"), table.IntCol("hid")))
	col.R1 = r1
	check("schema columns", mustSFP(t, col, opt))
}

// TestPlanRemapMatchesDirectClassification: solving with a plan compiled
// from a permuted declaration of the same constraints must match a plain
// solve byte for byte (the remap path).
func TestPlanRemapMatchesDirectClassification(t *testing.T) {
	in := censusInput(t, 40, 16, true, false)
	opt := Options{Seed: 3}

	perm := in
	perm.CCs = append([]constraint.CC(nil), in.CCs...)
	for i, j := 0, len(perm.CCs)-1; i < j; i, j = i+1, j-1 {
		perm.CCs[i], perm.CCs[j] = perm.CCs[j], perm.CCs[i]
	}
	plan, err := CompilePlan(perm, opt)
	if err != nil {
		t.Fatal(err)
	}
	kIn, err := StructuralFingerprint(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Key() != kIn {
		t.Fatalf("permuted constraints produced a different structural key")
	}

	st := NewSessionState()
	withPlan, err := SolveSession(in, opt, st, Changes{Full: true}, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Solve(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if resultFingerprint(withPlan) != resultFingerprint(direct) {
		t.Fatalf("plan-assisted solve differs from direct solve")
	}
	if !withPlan.Stats.PlanReused {
		t.Errorf("plan was not reused despite matching key")
	}
}
