package core

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/table"
)

func fpInstance() Input {
	r1 := table.NewRelation("R1", table.NewSchema(
		table.IntCol("pid"), table.StrCol("Rel"), table.IntCol("hid")))
	r1.MustAppend(table.Int(1), table.String("Owner"), table.Null())
	r1.MustAppend(table.Int(2), table.String("Spouse"), table.Null())
	r2 := table.NewRelation("R2", table.NewSchema(
		table.IntCol("hid"), table.StrCol("Area")))
	r2.MustAppend(table.Int(10), table.String("North"))
	r2.MustAppend(table.Int(11), table.String("South"))
	cc, err := constraint.ParseCC("cc north: count(Area = 'North') = 1")
	if err != nil {
		panic(err)
	}
	dc, err := constraint.ParseDC("dc one_owner: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'")
	if err != nil {
		panic(err)
	}
	return Input{R1: r1, R2: r2, K1: "pid", K2: "hid", FK: "hid",
		CCs: []constraint.CC{cc}, DCs: []constraint.DC{dc}}
}

func TestFingerprintStable(t *testing.T) {
	a, err := Fingerprint(fpInstance(), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint(fpInstance(), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same instance hashed differently: %x vs %x", a, b)
	}
}

func TestFingerprintIgnoresWorkersAndNames(t *testing.T) {
	base, _ := Fingerprint(fpInstance(), Options{Seed: 7})
	par, _ := Fingerprint(fpInstance(), Options{Seed: 7, Workers: 8})
	if base != par {
		t.Errorf("Workers changed the key: output is byte-identical across pool sizes")
	}
	renamed := fpInstance()
	renamed.CCs[0].Name = "something_else"
	renamed.DCs[0].Name = ""
	rn, _ := Fingerprint(renamed, Options{Seed: 7})
	if base != rn {
		t.Errorf("constraint names changed the key; they never change the output")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base, _ := Fingerprint(fpInstance(), Options{Seed: 7})
	seen := map[[32]byte]string{base: "base"}
	check := func(label string, in Input, opt Options) {
		t.Helper()
		k, err := Fingerprint(in, opt)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s", label, prev)
		}
		seen[k] = label
	}

	check("seed", fpInstance(), Options{Seed: 8})
	check("mode", fpInstance(), Options{Seed: 7, Mode: ModeILPOnly})
	check("random-fk", fpInstance(), Options{Seed: 7, RandomFK: true})

	row := fpInstance()
	row.R1.MustAppend(table.Int(3), table.String("Owner"), table.Null())
	check("extra R1 row", row, Options{Seed: 7})

	cell := fpInstance()
	cell.R2.Set(0, "Area", table.String("East"))
	check("changed R2 cell", cell, Options{Seed: 7})

	cons := fpInstance()
	cons.CCs[0].Target = 2
	check("changed CC target", cons, Options{Seed: 7})

	noDC := fpInstance()
	noDC.DCs = nil
	check("dropped DC", noDC, Options{Seed: 7})

	keys := fpInstance()
	keys.FK = "pid"
	check("different FK column", keys, Options{Seed: 7})
}

func TestFingerprintNilRelation(t *testing.T) {
	in := fpInstance()
	in.R2 = nil
	if _, err := Fingerprint(in, Options{}); err == nil {
		t.Fatal("want error for nil relation")
	}
}
