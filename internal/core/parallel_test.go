package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/table"
)

// fingerprint serializes a relation — schema, name, and every cell in row
// order — so two results can be compared byte-for-byte.
func fingerprint(r *table.Relation) string {
	var b strings.Builder
	b.WriteString(r.Name)
	b.WriteByte('|')
	b.WriteString(strings.Join(r.Schema().Names(), ","))
	for i := 0; i < r.Len(); i++ {
		b.WriteByte('\n')
		b.WriteString(table.EncodeKey(r.Row(i)...))
	}
	return b.String()
}

func resultFingerprint(res *Result) [3]string {
	return [3]string{fingerprint(res.R1Hat), fingerprint(res.R2Hat), fingerprint(res.VJoin)}
}

// TestParallelMatchesSequential pins the determinism claim end to end: for
// several seeds, instance shapes, and solver modes, running with a worker
// pool (fixed size and GOMAXPROCS) produces output byte-identical to the
// sequential path across R̂1, R̂2, and V_Join — covering the parallel phase-1
// Hasse fan-out, the block-decomposed ILP, and the streamed phase-2
// coloring.
func TestParallelMatchesSequential(t *testing.T) {
	type instance struct {
		name string
		in   func() Input
	}
	instances := []instance{
		{"paper", func() Input { return paperInput(t) }},
		{"census-good", func() Input { return censusInput(t, 60, 24, true, false) }},
		{"census-bad", func() Input { return censusInput(t, 60, 24, false, false) }},
	}
	modes := []struct {
		name string
		opt  Options
	}{
		{"hybrid", Options{}},
		{"ilp-only", Options{Mode: ModeILPOnly}},
		{"hasse-only", Options{Mode: ModeHasseOnly}},
		{"input-order", Options{Order: OrderInput}},
		{"no-partition", Options{NoPartition: true}},
	}
	for _, inst := range instances {
		for _, mode := range modes {
			for _, seed := range []int64{1, 7, 42} {
				opt := mode.opt
				opt.Seed = seed
				opt.Workers = 0
				seq, err := Solve(inst.in(), opt)
				if err != nil {
					t.Fatalf("%s/%s seed %d sequential: %v", inst.name, mode.name, seed, err)
				}
				want := resultFingerprint(seq)
				for _, workers := range []int{4, -1} {
					opt.Workers = workers
					par, err := Solve(inst.in(), opt)
					if err != nil {
						t.Fatalf("%s/%s seed %d workers %d: %v", inst.name, mode.name, seed, workers, err)
					}
					if got := resultFingerprint(par); got != want {
						for k, label := range []string{"R1Hat", "R2Hat", "VJoin"} {
							if got[k] != want[k] {
								t.Errorf("%s/%s seed %d workers %d: %s differs from sequential",
									inst.name, mode.name, seed, workers, label)
							}
						}
					}
				}
			}
		}
	}
}

func TestSolveBatchMatchesIndividualSolves(t *testing.T) {
	inputs := []Input{paperInput(t), censusInput(t, 60, 24, true, false), censusInput(t, 60, 24, false, false)}
	opt := Options{Seed: 3, Workers: 4}
	batch, err := SolveBatch(context.Background(), inputs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(inputs) {
		t.Fatalf("got %d results for %d inputs", len(batch), len(inputs))
	}
	solo := []Input{paperInput(t), censusInput(t, 60, 24, true, false), censusInput(t, 60, 24, false, false)}
	for i := range solo {
		want, err := Solve(solo[i], opt)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] == nil {
			t.Fatalf("instance %d: nil result", i)
		}
		if resultFingerprint(batch[i]) != resultFingerprint(want) {
			t.Errorf("instance %d: batch result differs from standalone Solve", i)
		}
	}
}

func TestSolveBatchIsolatesInstanceErrors(t *testing.T) {
	bad := paperInput(t)
	bad.K1 = "no-such-column"
	inputs := []Input{paperInput(t), bad, paperInput(t)}
	results, err := SolveBatch(context.Background(), inputs, Options{Seed: 1, Workers: 2})
	if err == nil {
		t.Fatal("expected an error for the broken instance")
	}
	if !strings.Contains(err.Error(), "instance 1") {
		t.Errorf("error not annotated with instance index: %v", err)
	}
	if results[1] != nil {
		t.Error("broken instance produced a result")
	}
	for _, i := range []int{0, 2} {
		if results[i] == nil {
			t.Errorf("healthy instance %d lost its result", i)
		}
	}
}

func TestSolveBatchHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inputs := []Input{paperInput(t), paperInput(t)}
	results, err := SolveBatch(ctx, inputs, Options{Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("instance %d ran despite cancelled context", i)
		}
	}
}

func TestSolveBatchEmpty(t *testing.T) {
	results, err := SolveBatch(context.Background(), nil, Options{})
	if err != nil || len(results) != 0 {
		t.Fatalf("results = %v, err = %v", results, err)
	}
}

// TestStatsTimerConsistency pins the satellite fix: the coloring timer is a
// strict component of Phase2, and Phase1 + Phase2 never exceed Total.
func TestStatsTimerConsistency(t *testing.T) {
	in := censusInput(t, 60, 24, true, false)
	res, err := Solve(in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Coloring <= 0 || s.Phase2 <= 0 {
		t.Fatalf("timers not populated: %+v", s)
	}
	if s.Coloring > s.Phase2 {
		t.Errorf("Coloring (%v) > Phase2 (%v)", s.Coloring, s.Phase2)
	}
	if s.Phase1+s.Phase2 > s.Total {
		t.Errorf("Phase1 (%v) + Phase2 (%v) > Total (%v)", s.Phase1, s.Phase2, s.Total)
	}
}
