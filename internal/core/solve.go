package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/constraint"
	"repro/internal/hasse"
	"repro/internal/obsv"
	"repro/internal/sched"
	"repro/internal/table"
)

// PoolFor builds the worker pool an Options value asks for: nil (fully
// sequential) for Workers 0 or 1, a GOMAXPROCS-sized pool for negative
// Workers, and an exactly-sized pool otherwise. A pool that resolves to a
// single worker (GOMAXPROCS=1) is collapsed to nil so single-core hosts
// take the true sequential path instead of paying speculation overhead for
// zero parallelism. It is the single source of the parallelism policy:
// the incremental engine derives session pools through it, so a session
// solve and a cold Solve of the same Options always parallelize alike.
//
//lint:ctxflow PoolFor only constructs the pool; the caller owns its lifecycle, and cancellation applies to solves, not to pool construction
func PoolFor(opt Options) *sched.Pool {
	var pool *sched.Pool
	switch {
	case opt.Workers < 0:
		pool = sched.New(0)
	case opt.Workers > 1:
		pool = sched.New(opt.Workers)
	}
	if pool != nil && pool.Workers() == 1 {
		return nil
	}
	return pool
}

// Solve runs the two-phase C-Extension solver end to end and returns R̂1
// (FK filled), R̂2 (possibly augmented), and the final join view. With the
// default options this is the paper's hybrid; BaselineOptions and
// BaselineMarginalsOptions reproduce the §6.1 comparison algorithms.
func Solve(in Input, opt Options) (*Result, error) {
	return solveOnPool(nil, in, opt, PoolFor(opt))
}

// SolveOn is Solve against a caller-owned worker pool (nil runs fully
// sequentially). Long-lived callers — notably the serving layer — create
// one pool at startup and route every request's solve through it, so the
// process-wide parallelism stays bounded no matter how many requests are in
// flight. opt.Workers is ignored; the pool is the parallelism policy.
//
//lint:ctxflow non-cancellable convenience wrapper for tests and CLIs; SolveOnContext is the serving-path entry
func SolveOn(in Input, opt Options, pool *sched.Pool) (*Result, error) {
	return solveOnPool(nil, in, opt, pool)
}

// SolveOnContext is SolveOn with cooperative cancellation: ctx is observed
// at the solver's phase boundaries (before phase I, between the Hasse and
// ILP stages, and before phase II), so a canceled request stops within one
// phase rather than running the solve to completion. A nil ctx never
// cancels. Results are unaffected by cancellation timing: a solve either
// finishes byte-identical to SolveOn or returns ctx's error.
func SolveOnContext(ctx context.Context, in Input, opt Options, pool *sched.Pool) (*Result, error) {
	return solveOnPool(ctx, in, opt, pool)
}

// solveOnPool is Solve against a caller-provided worker pool, shared across
// the instances of a batch.
func solveOnPool(ctx context.Context, in Input, opt Options, pool *sched.Pool) (*Result, error) {
	var stat Stats
	tr := obsv.FromContext(ctx)
	t0 := now()
	p, err := newProb(in, opt, &stat)
	if err != nil {
		return nil, err
	}
	tr.Span("compile", t0, since(t0))
	p.pool = pool
	p.ctx = ctx
	p.trace = tr
	return p.run(t0)
}

// ctxErr is ctx.Err() with nil meaning "never canceled": the solver
// threads an optional context without minting a Background below the API
// boundary.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// canceled reports the problem's cancellation state, wrapping the context
// error so callers can errors.Is against context.Canceled.
func (p *prob) canceled() error {
	if err := ctxErr(p.ctx); err != nil {
		return fmt.Errorf("core: solve canceled: %w", err)
	}
	return nil
}

// classification returns the pairwise CC relationship matrix, computing it
// on first use — from the attached plan's canonical matrix when it matches,
// by direct classification otherwise — and caching it on the problem so
// session re-solves never reclassify (the matrix depends only on constraint
// predicates, which a session never changes).
func (p *prob) classification() [][]constraint.Relationship {
	if p.rel != nil {
		return p.rel
	}
	if p.plan != nil {
		if rel, ok := p.plan.relFor(p.in.CCs); ok {
			p.rel = rel
			p.planReused = true
			return p.rel
		}
	}
	p.rel = constraint.ClassifyAll(p.in.CCs, func(c string) bool { return p.isR2Col[c] })
	return p.rel
}

// hybridSplit returns the cached S1/S2 split and S1 Hasse forest, building
// them from the classification on first use.
func (p *prob) hybridSplit() *hybridSplitState {
	if p.split == nil {
		s1, s2 := p.splitHybrid(p.classification())
		p.split = &hybridSplitState{s1: s1, s2: s2, forest: hasse.Build(subMatrix(p.rel, s1))}
	}
	return p.split
}

// run executes both solver phases on a prepared problem. It resets the
// randomized tie-breaking stream first, so re-running a retained problem
// (the session path) is byte-identical to a fresh solve of the same input.
func (p *prob) run(t0 time.Time) (*Result, error) {
	in, opt, stat := p.in, p.opt, p.stat
	p.rng = rand.New(rand.NewSource(opt.Seed))
	if err := p.canceled(); err != nil {
		return nil, err
	}

	// ---------- Phase I: complete V_Join from the CCs ----------
	tPhase1 := now()
	switch opt.Mode {
	case ModeHybrid:
		tw := now()
		hs := p.hybridSplit()
		stat.Pairwise = since(tw)
		p.trace.Span("classify", tw, stat.Pairwise)
		stat.CCsToHasse, stat.CCsToILP = len(hs.s1), len(hs.s2)

		tw = now()
		p.runHasse(hs.s1, hs.forest)
		stat.Recursion = since(tw)
		p.trace.Span("hasse", tw, stat.Recursion)

		if err := p.canceled(); err != nil {
			return nil, err
		}
		tw = now()
		if err := p.runILP(hs.s2, !opt.NoMarginals); err != nil {
			return nil, err
		}
		stat.ILPTime = since(tw)
		p.trace.Span("ilp", tw, stat.ILPTime)

	case ModeILPOnly:
		all := make([]int, len(in.CCs))
		for i := range all {
			all[i] = i
		}
		stat.CCsToILP = len(all)
		tw := now()
		if err := p.runILP(all, !opt.NoMarginals); err != nil {
			return nil, err
		}
		stat.ILPTime = since(tw)
		p.trace.Span("ilp", tw, stat.ILPTime)

	case ModeHasseOnly:
		all := make([]int, len(in.CCs))
		for i := range all {
			all[i] = i
		}
		stat.CCsToHasse = len(all)
		tw := now()
		rel := p.classification()
		stat.Pairwise = since(tw)
		p.trace.Span("classify", tw, stat.Pairwise)
		tw = now()
		if p.forestAll == nil {
			p.forestAll = hasse.Build(rel)
		}
		p.runHasse(all, p.forestAll)
		stat.Recursion = since(tw)
		p.trace.Span("hasse", tw, stat.Recursion)

	default:
		return nil, fmt.Errorf("core: unknown mode %v", opt.Mode)
	}

	// Leftover tuples. The plain baseline fills them with uniformly random
	// combos (§6.1); every other configuration uses combinations unused by
	// the CC set, leaving invalid tuples when none exist.
	if opt.RandomFK && opt.NoMarginals {
		p.fillLeftoversRandom()
	} else {
		completed, invalid := p.fillLeftoversUnused()
		stat.UnfilledAfterPhase1 = completed + invalid
		if opt.RandomFK && invalid > 0 {
			p.fillLeftoversRandom() // baselines never carry invalid tuples
		}
	}
	stat.Phase1 = since(tPhase1)
	stat.PlanReused = p.planReused // set by classification() during phase I

	// ---------- Phase II: complete R1.FK from V_Join and the DCs ----------
	// runPhase2 records stat.Coloring itself (graph construction + coloring
	// only); Phase2 additionally covers invalid-tuple repair, the R̂1
	// write-back, and the final join.
	if err := p.canceled(); err != nil {
		return nil, err
	}
	tPhase2 := now()
	ph, err := p.runPhase2()
	if err != nil {
		return nil, err
	}

	tWriteBack := now()
	r1hat := in.R1.Clone()
	for i := 0; i < r1hat.Len(); i++ {
		r1hat.Set(i, in.FK, ph.fk[i])
	}
	vj, err := table.Join(r1hat, in.FK, ph.r2hat, in.K2)
	if err != nil {
		return nil, err
	}
	vj.Name = "VJoin"
	p.trace.Span("write-back", tWriteBack, since(tWriteBack))
	stat.Phase2 = since(tPhase2)
	p.trace.Span("phase2", tPhase2, stat.Phase2)
	stat.Total = since(t0)
	// The explain report is measured only on request and only after the
	// solve is complete; it lands on the trace, never in the Result, so
	// solver output stays byte-identical with explain on or off.
	if p.trace.ExplainRequested() {
		p.trace.SetExplain(p.buildExplain())
	}
	return &Result{R1Hat: r1hat, R2Hat: ph.r2hat, VJoin: vj, Stats: *stat}, nil
}

// fillLeftoversRandom assigns uniformly random active combos to every
// still-unfilled tuple (the plain baseline's completion rule).
func (p *prob) fillLeftoversRandom() {
	if len(p.usedBCols) == 0 || len(p.combos) == 0 {
		return
	}
	for i := 0; i < p.vjoin.Len(); i++ {
		if !p.filled(i) {
			p.assignCombo(i, p.rng.Intn(len(p.combos)))
		}
	}
}
