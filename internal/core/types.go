// Package core implements the paper's contribution: the two-phase
// C-Extension solver.
//
// Phase I fills the R2-originated columns of the join view V_Join from the
// cardinality constraints, combining Algorithm 1 (ILP over intervalized
// bins) for intersecting CCs with Algorithm 2 (recursion over Hasse
// diagrams of the containment order) for the rest — the hybrid of §4.3.
//
// Phase II (Algorithm 4) reverse-engineers R1's foreign-key column from the
// filled view by list-coloring conflict hypergraphs built from the denial
// constraints, partitioned by the filled R2 values (§5.2 optimization), and
// materializes fresh R2 tuples for skipped vertices. The result satisfies
// every DC exactly (Prop. 5.5) while keeping CC error low.
package core

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/constraint"
	"repro/internal/hasse"
	"repro/internal/ilp"
	"repro/internal/obsv"
	"repro/internal/sched"
	"repro/internal/table"
)

// Input is a C-Extension instance (Def. 2.6): R1 with an empty FK column,
// R2, and the two constraint sets.
type Input struct {
	R1 *table.Relation // schema (K1, A1..Ap, FK); FK column all-null
	R2 *table.Relation // schema (K2, B1..Bq)
	K1 string          // primary key column of R1
	K2 string          // primary key column of R2 (FK target)
	FK string          // foreign key column of R1

	CCs []constraint.CC
	DCs []constraint.DC
}

// Mode selects the phase-I strategy.
type Mode uint8

const (
	// ModeHybrid is the paper's approach (§4.3): Algorithm 2 for
	// intersection-free diagrams, Algorithm 1 for the rest.
	ModeHybrid Mode = iota
	// ModeILPOnly routes every CC through Algorithm 1 (the baselines, and
	// an ablation of the hybrid split).
	ModeILPOnly
	// ModeHasseOnly routes every CC through Algorithm 2, even intersecting
	// ones (ablation; CC error may grow).
	ModeHasseOnly
)

func (m Mode) String() string {
	switch m {
	case ModeHybrid:
		return "hybrid"
	case ModeILPOnly:
		return "ilp-only"
	case ModeHasseOnly:
		return "hasse-only"
	}
	return "unknown"
}

// ColorOrder selects the vertex order of the list-coloring heuristic.
type ColorOrder uint8

const (
	// OrderLargestFirst is Algorithm 3's non-increasing degree order.
	OrderLargestFirst ColorOrder = iota
	// OrderInput visits vertices in input order (ablation).
	OrderInput
)

// Options configure the solver. The zero value is the paper's hybrid with
// marginal augmentation and partitioned coloring.
type Options struct {
	Mode Mode
	// NoMarginals disables the all-way-marginal augmentation of the ILP
	// (§4.1); the plain baseline runs with this set.
	NoMarginals bool
	// RandomFK makes phase II assign a uniformly random candidate FK per
	// tuple instead of coloring conflict graphs — the baselines' phase II.
	RandomFK bool
	// NoPartition disables the §5.2 optimization and builds one global
	// conflict hypergraph (ablation; slow on large inputs).
	NoPartition bool
	// Order selects the coloring vertex order.
	Order ColorOrder
	// Workers bounds the shared worker pool that parallelizes the whole
	// pipeline: phase I runs independent Hasse subtrees and per-block ILP
	// subproblems concurrently, and phase II streams partitions' conflict
	// hypergraphs into a coloring pool as they are discovered (the Appendix
	// A.3 optimization). SolveBatch schedules whole instances over the same
	// pool. 0 or 1 runs sequentially; negative uses GOMAXPROCS. Output is
	// byte-identical to the sequential path, with one carve-out: a nonzero
	// ILP.TimeLimit makes any run (sequential included) wall-clock
	// dependent, so no determinism is promised under it.
	Workers int
	// Seed drives all randomized tie-breaking; same seed, same output.
	Seed int64
	// ILP bounds the branch-and-bound effort of Algorithm 1. MaxNodes is a
	// per-block budget (the program decomposes into independent blocks);
	// TimeLimit bounds the whole ILP stage.
	ILP ilp.Options
}

// BaselineOptions returns the configuration of the paper's plain baseline
// (Arasu-style ILP without marginal rows, random FK assignment).
func BaselineOptions(seed int64) Options {
	return Options{Mode: ModeILPOnly, NoMarginals: true, RandomFK: true, Seed: seed}
}

// BaselineMarginalsOptions returns the "baseline with marginals"
// configuration from §6.1.
func BaselineMarginalsOptions(seed int64) Options {
	return Options{Mode: ModeILPOnly, RandomFK: true, Seed: seed}
}

// Stats records runtime breakdown and solution diagnostics; the fields
// mirror the stages reported in Figures 11 and 13 of the paper.
type Stats struct {
	Pairwise  time.Duration // CC pairwise classification
	Recursion time.Duration // Algorithm 2 over Hasse diagrams
	ILPTime   time.Duration // Algorithm 1 (build + solve + greedy fill)
	Coloring  time.Duration // Algorithm 4 conflict graphs + coloring only
	Phase1    time.Duration
	Phase2    time.Duration // all of phase II incl. R̂1 write-back and final join
	Total     time.Duration

	CCsToHasse int // |S1|
	CCsToILP   int // |S2|
	ILPVars    int
	ILPRows    int
	ILPNodes   int
	ILPIters   int
	ILPStatus  string

	UnfilledAfterPhase1 int // tuples completed via combo_unused
	InvalidTuples       int
	Partitions          int
	ConflictEdges       int
	SkippedVertices     int
	AddedR2Tuples       int

	// Incremental-solve diagnostics (the session / delta path; see
	// SolveSession). All zero for a plain Solve.
	PlanReused        bool // CC classification came from a compiled Plan
	ProbReused        bool // the compiled problem was patched, not rebuilt
	SplicedPartitions int  // phase-2 partitions spliced from the prior solve
}

// Result is the solver output: R̂1 with the FK column completed, R̂2 with
// any artificially added tuples, the final join view, and diagnostics.
type Result struct {
	R1Hat *table.Relation
	R2Hat *table.Relation
	VJoin *table.Relation // R̂1 ⋈ R̂2, fully populated
	Stats Stats
}

// prob carries the derived solver state shared across phases.
type prob struct {
	in   Input
	opt  Options
	rng  *rand.Rand
	stat *Stats
	pool *sched.Pool     // shared bounded worker pool; nil means sequential
	ctx  context.Context // per-solve cancellation; nil never cancels

	// trace receives per-phase spans for the solve in flight; nil (the
	// common non-served case) records nothing. All span clock readings go
	// through the audited now()/since() helpers — the trace only ever
	// receives explicit (start, duration) pairs, so this package still
	// reads the wall clock in exactly one audited place and trace data
	// stays out of Stats, fingerprints, and solver decisions.
	trace *obsv.Trace

	aCols     []string // R1 non-key attribute columns
	bCols     []string // R2 non-key attribute columns
	usedBCols []string // B columns referenced by any CC
	isR2Col   map[string]bool

	vjoin *table.Relation // K1 + aCols + bCols; usedBCols filled by phase I

	// colView is the columnar snapshot of V_Join's immutable columns
	// (K1 + aCols — everything the CC R1-parts and the DCs can touch).
	// Phase I only ever writes usedBCols, so the snapshot stays valid for
	// the whole solve and every hot predicate compiles against it once.
	colView *table.Columnar

	// comboOf mirrors the phase-I fill state: the combo index assigned to
	// each V_Join row, or -1 while the row is unfilled. It makes filled()
	// an array lookup and lets phase II partition rows without re-encoding
	// their B values.
	comboOf []int

	// Active combos of R2 over usedBCols, in canonical (sorted-key) order.
	// All cross-references use the integer combo id; comboKeys/comboByKey
	// survive only for setup and diagnostics.
	combos      [][]table.Value
	comboKeys   []string
	comboByKey  map[string]int
	r2RowsBy    [][]int         // combo id -> R2 row indices (of in.R2)
	keysByCombo [][]table.Value // combo id -> sorted candidate FK keys (L of Algorithm 4)

	ccR1s, ccR2s [][]table.Predicate // per-disjunct splits (union semantics)

	// Compiled forms: ccR1b holds the per-disjunct R1 parts compiled
	// against colView (ccR1b[cc][0] is the Algorithm 2 conjunct), and
	// ccComboMatch[cc][d][c] records whether combo c satisfies disjunct
	// d's R2 part — the paper's selection predicates reduced to slice
	// lookups.
	ccR1b        [][]table.ColPredicate
	ccComboMatch [][][]bool

	// DCs bound to the join view: boundDCs for pairwise atom evaluation,
	// dcCand[dc][var][row] for the unary candidate filters, and intAccess
	// for typed reads of the columns binary atoms compare (all computed
	// once per solve in ensureDCCand, read concurrently by the coloring
	// workers).
	boundDCs  []constraint.BoundDC
	dcCand    [][][]bool
	intAccess map[string]func(int) (int64, bool)
	dcColIdx  []int // V_Join column indices referenced by any DC atom

	// Plan / session reuse state. plan (optional) supplies the pairwise CC
	// classification without reclassifying; rel, split and forestAll cache
	// the classification-derived artifacts across a session's re-solves
	// (they depend only on constraint predicates, never on targets or row
	// data). capture/prior/dirty drive the phase-2 memo machinery of
	// session.go; all nil/false for a plain Solve.
	plan       *Plan
	planReused bool
	rel        [][]constraint.Relationship
	split      *hybridSplitState
	forestAll  *hasse.Forest

	capture  bool         // record a solveMemo during phase 2
	priors   []*solveMemo // retained memos to splice from, newest first
	captured *solveMemo   // memo recorded by the current run
}

// hybridSplitState caches the hybrid's S1/S2 split and the S1 Hasse forest.
type hybridSplitState struct {
	s1, s2 []int
	forest *hasse.Forest
}
