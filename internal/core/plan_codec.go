package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/constraint"
)

// Plan blob encoding for the durable store: little-endian, length-prefixed,
// self-delimiting. Plans are small (a render list plus an n×n relationship
// matrix of bytes), so the codec copies rather than aliasing.

var planMagic = [8]byte{'L', 'S', 'P', 'L', 'A', 'N', '1', '\n'}

// EncodePlan returns the canonical binary form of the plan.
func EncodePlan(pl *Plan) []byte {
	n := len(pl.renders)
	size := 8 + 32 + 4
	for _, r := range pl.renders {
		size += 4 + len(r)
	}
	size += n * n
	out := make([]byte, 0, size)
	out = append(out, planMagic[:]...)
	out = append(out, pl.key[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	for _, r := range pl.renders {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(r)))
		out = append(out, r...)
	}
	for _, row := range pl.rel {
		for _, rel := range row {
			out = append(out, byte(rel))
		}
	}
	return out
}

// DecodePlan reconstructs a plan from data, which must hold exactly one
// encoded blob. Structural inconsistencies fail with an error; the decoded
// plan is usable anywhere a freshly compiled one is.
func DecodePlan(data []byte) (*Plan, error) {
	off := 0
	take := func(n int) ([]byte, bool) {
		if n < 0 || off+n > len(data) {
			return nil, false
		}
		b := data[off : off+n]
		off += n
		return b, true
	}
	magic, ok := take(8)
	if !ok || string(magic) != string(planMagic[:]) {
		return nil, fmt.Errorf("core: plan blob: bad magic")
	}
	keyb, ok := take(32)
	if !ok {
		return nil, fmt.Errorf("core: plan blob truncated")
	}
	pl := &Plan{}
	copy(pl.key[:], keyb)
	nb, ok := take(4)
	if !ok {
		return nil, fmt.Errorf("core: plan blob truncated")
	}
	n := int(binary.LittleEndian.Uint32(nb))
	if n*4 > len(data)-off { // each render carries at least a length prefix
		return nil, fmt.Errorf("core: plan blob truncated")
	}
	pl.renders = make([]string, n)
	for i := range pl.renders {
		lb, ok := take(4)
		if !ok {
			return nil, fmt.Errorf("core: plan blob truncated")
		}
		sb, ok := take(int(binary.LittleEndian.Uint32(lb)))
		if !ok {
			return nil, fmt.Errorf("core: plan blob truncated")
		}
		pl.renders[i] = string(sb)
	}
	pl.rel = make([][]constraint.Relationship, n)
	for i := range pl.rel {
		row, ok := take(n)
		if !ok {
			return nil, fmt.Errorf("core: plan blob truncated")
		}
		pl.rel[i] = make([]constraint.Relationship, n)
		for j, b := range row {
			if !constraint.ValidRelationship(constraint.Relationship(b)) {
				return nil, fmt.Errorf("core: plan blob: invalid relationship %d", b)
			}
			pl.rel[i][j] = constraint.Relationship(b)
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("core: plan blob: %d trailing bytes", len(data)-off)
	}
	return pl, nil
}
