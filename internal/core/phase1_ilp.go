package core

import (
	"fmt"
	"sort"

	"repro/internal/binning"
	"repro/internal/ilp"
	"repro/internal/table"
)

// runILP is Algorithm 1: model the given CCs over the still-unfilled
// V_Join tuples as an integer program and greedily write the solution's
// combos back into the view.
//
// Bins are the distinct (A1..Ap) combinations among unfilled tuples with
// numeric columns intervalized at CC boundaries; variables are the
// (bin, combo) pairs touched by at least one CC row. With marginals enabled
// (the paper's augmentation, §4.1/§4.3) each bin contributes a hard
// capacity row and a soft all-way-marginal row, the latter including a
// remainder variable when globally unused combos exist so that surplus
// tuples can be parked harmlessly.
func (p *prob) runILP(ccIdx []int, withMarginals bool) error {
	if len(ccIdx) == 0 || len(p.usedBCols) == 0 {
		return nil
	}
	// Intervalize the R1 parts of every disjunct of the participating CCs.
	preds := make([]table.Predicate, 0, len(ccIdx))
	for _, cc := range ccIdx {
		preds = append(preds, p.ccR1s[cc]...)
	}
	intervals := binning.Intervalize(preds)
	binner := binning.NewBinner(p.vjoin.Schema(), p.aCols, intervals)

	// Collect bins over unfilled tuples.
	type binInfo struct {
		rep  int // representative V_Join row
		rows []int
	}
	binByKey := make(map[string]int)
	var bins []binInfo
	for i := 0; i < p.vjoin.Len(); i++ {
		if p.filled(i) {
			continue
		}
		k := binner.Key(p.vjoin.Row(i))
		id, ok := binByKey[k]
		if !ok {
			id = len(bins)
			binByKey[k] = id
			bins = append(bins, binInfo{rep: i})
		}
		bins[id].rows = append(bins[id].rows, i)
	}
	if len(bins) == 0 {
		return nil
	}

	// Lazily create variables from CC rows.
	type varKey struct{ bin, combo int }
	varID := make(map[varKey]int)
	var varList []varKey
	getVar := func(b, c int) int {
		k := varKey{b, c}
		if id, ok := varID[k]; ok {
			return id
		}
		id := len(varList)
		varID[k] = id
		varList = append(varList, k)
		return id
	}

	prob := &ilp.Problem{}
	var ccRows [][]ilp.Term
	for _, cc := range ccIdx {
		// Union over the CC's disjuncts: a (bin, combo) pair contributes
		// once if any disjunct covers it.
		covered := make(map[varKey]bool)
		var terms []ilp.Term
		for d := range p.ccR1s[cc] {
			var matchBins []int
			for b := range bins {
				if p.ccR1b[cc][d].Eval(bins[b].rep) {
					matchBins = append(matchBins, b)
				}
			}
			for c := range p.combos {
				if !p.ccComboMatch[cc][d][c] {
					continue
				}
				for _, b := range matchBins {
					k := varKey{b, c}
					if covered[k] {
						continue
					}
					covered[k] = true
					terms = append(terms, ilp.Term{Var: getVar(b, c), Coef: 1})
				}
			}
		}
		ccRows = append(ccRows, terms)
	}

	// The CC soft rows. A CC with no reachable (bin, combo) pair still gets
	// a row so its deviation is accounted for; it simply has no terms.
	for i, cc := range ccIdx {
		prob.Cons = append(prob.Cons, ilp.Constraint{
			Terms: ccRows[i], Sense: ilp.EQ, RHS: float64(p.in.CCs[cc].Target), Soft: true,
		})
	}

	// Group variables by bin for the capacity/marginal rows.
	varsByBin := make(map[int][]int)
	for id, k := range varList {
		varsByBin[k.bin] = append(varsByBin[k.bin], id)
	}
	nStructural := len(varList)
	remainderPossible := len(p.comboUnused()) > 0
	remainderVar := make(map[int]int) // bin -> var id
	if withMarginals {
		next := nStructural
		// Sorted bin order keeps the LP row order — and therefore the
		// specific optimum the simplex lands on — deterministic.
		binOrder := make([]int, 0, len(varsByBin))
		for b := range varsByBin {
			binOrder = append(binOrder, b)
		}
		sort.Ints(binOrder)
		for _, b := range binOrder {
			vars := varsByBin[b]
			cnt := float64(len(bins[b].rows))
			terms := make([]ilp.Term, 0, len(vars)+1)
			for _, v := range vars {
				terms = append(terms, ilp.Term{Var: v, Coef: 1})
			}
			if remainderPossible {
				terms = append(terms, ilp.Term{Var: next, Coef: 1})
				remainderVar[b] = next
				next++
			}
			// Hard capacity: never plan more tuples than the bin holds.
			prob.Cons = append(prob.Cons, ilp.Constraint{Terms: terms, Sense: ilp.LE, RHS: cnt})
			// Soft all-way marginal: plan to assign the whole bin.
			prob.Cons = append(prob.Cons, ilp.Constraint{Terms: terms, Sense: ilp.EQ, RHS: cnt, Soft: true})
		}
		prob.NumVars = next
	} else {
		prob.NumVars = nStructural
	}

	// The program decomposes into independent blocks (connected components
	// of its variable–constraint graph — at least one per disjoint CC
	// component); with a pool attached, the blocks solve concurrently.
	var runner ilp.Runner
	if p.pool != nil {
		runner = p.pool
	}
	sol, err := ilp.SolveBlocks(prob, p.opt.ILP, runner)
	if err != nil {
		return fmt.Errorf("core: algorithm 1: %w", err)
	}
	p.stat.ILPVars += prob.NumVars
	p.stat.ILPRows += len(prob.Cons)
	p.stat.ILPNodes += sol.Nodes
	p.stat.ILPIters += sol.Iters
	p.stat.ILPStatus = sol.Status.String()
	if sol.Status == ilp.StatusInfeasible {
		// Hard rows are only capacities over non-negative vars, so this
		// cannot happen; guard anyway.
		return fmt.Errorf("core: algorithm 1: infeasible capacity system")
	}

	// Greedy fill (lines 15–17): deterministic variable order.
	order := make([]int, nStructural)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := varList[order[a]], varList[order[b]]
		if ka.bin != kb.bin {
			return ka.bin < kb.bin
		}
		return ka.combo < kb.combo
	})
	cursor := make(map[int]int) // bin -> next row offset
	for _, id := range order {
		v := sol.X[id]
		if v <= 0 {
			continue
		}
		k := varList[id]
		rows := bins[k.bin].rows
		for v > 0 && cursor[k.bin] < len(rows) {
			row := rows[cursor[k.bin]]
			cursor[k.bin]++
			if p.filled(row) {
				continue
			}
			p.assignCombo(row, k.combo)
			v--
		}
	}
	return nil
}
