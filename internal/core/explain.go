package core

import (
	"repro/internal/obsv"
)

// buildExplain measures the solve's cost report: per-CC/DC cardinalities
// and selectivities counted off the columnar posting lists, the phase
// durations already captured in Stats, partition sizes, and the ILP and
// reuse counters. It runs only when the request asked for it
// (Trace.ExplainRequested), after both phases completed, and is strictly
// read-only diagnostics: it consults the same compiled state the solve
// used (colView, ccComboMatch, dcCand, comboOf) and never touches solver
// output, Stats the solve already wrote, or anything fingerprinted. The
// durations come from Stats — measured through the audited now()/since()
// helpers — so this file reads no clock.
func (p *prob) buildExplain() *obsv.ExplainReport {
	stat := p.stat
	viewRows := p.vjoin.Len()
	rep := &obsv.ExplainReport{
		Mode:       p.opt.Mode.String(),
		ViewRows:   viewRows,
		R2Rows:     p.in.R2.Len(),
		Combos:     len(p.combos),
		UsedBCols:  len(p.usedBCols),
		CCsToHasse: stat.CCsToHasse,
		CCsToILP:   stat.CCsToILP,
	}

	// Route per CC: the hybrid's S1/S2 split when it ran, the mode's
	// single route otherwise.
	route := make([]string, len(p.in.CCs))
	switch {
	case p.opt.Mode == ModeILPOnly:
		for i := range route {
			route[i] = "ilp"
		}
	case p.opt.Mode == ModeHasseOnly:
		for i := range route {
			route[i] = "hasse"
		}
	case p.split != nil:
		for _, i := range p.split.s1 {
			route[i] = "hasse"
		}
		for _, i := range p.split.s2 {
			route[i] = "ilp"
		}
	}

	for i, cc := range p.in.CCs {
		ec := obsv.ExplainCC{Index: i, Name: cc.Name, Target: cc.Target, Route: route[i]}
		for d := range p.ccR1b[i] {
			rows := p.colView.Count(p.ccR1b[i][d])
			matched := 0
			for _, ok := range p.ccComboMatch[i][d] {
				if ok {
					matched++
				}
			}
			ec.Disjuncts = append(ec.Disjuncts, obsv.ExplainDisjunct{
				R1Rows:        rows,
				R1Selectivity: ratio(rows, viewRows),
				Combos:        matched,
				ComboFraction: ratio(matched, len(p.combos)),
			})
		}
		rep.CCs = append(rep.CCs, ec)
	}

	// DC candidate sets. ensureDCCand is idempotent: on any solve with DCs
	// phase II already built these, so this is a slice read, not a rescan.
	p.ensureDCCand()
	for di, dc := range p.in.DCs {
		ed := obsv.ExplainDC{Index: di, Name: dc.Name}
		for v := 0; v < dc.K; v++ {
			rows := 0
			for _, ok := range p.dcCand[di][v] {
				if ok {
					rows++
				}
			}
			ed.Vars = append(ed.Vars, obsv.ExplainVar{Rows: rows, Selectivity: ratio(rows, viewRows)})
		}
		rep.DCs = append(rep.DCs, ed)
	}

	rep.Phases = []obsv.ExplainPhase{
		{Name: "classify", DurNS: stat.Pairwise.Nanoseconds()},
		{Name: "hasse", DurNS: stat.Recursion.Nanoseconds()},
		{Name: "ilp", DurNS: stat.ILPTime.Nanoseconds()},
		{Name: "phase1", DurNS: stat.Phase1.Nanoseconds()},
		{Name: "coloring", DurNS: stat.Coloring.Nanoseconds()},
		{Name: "phase2", DurNS: stat.Phase2.Nanoseconds()},
		{Name: "total", DurNS: stat.Total.Nanoseconds()},
	}

	parts, invalid := p.partitions()
	ep := obsv.ExplainPartitions{Count: len(parts), InvalidRows: len(invalid)}
	total := 0
	for i, pt := range parts {
		n := len(pt.rows)
		total += n
		if i == 0 || n < ep.MinRows {
			ep.MinRows = n
		}
		if n > ep.MaxRows {
			ep.MaxRows = n
		}
	}
	if len(parts) > 0 {
		ep.MeanRows = float64(total) / float64(len(parts))
	}
	rep.Partitions = ep

	rep.ILP = obsv.ExplainILP{
		Vars:   stat.ILPVars,
		Rows:   stat.ILPRows,
		Nodes:  stat.ILPNodes,
		Iters:  stat.ILPIters,
		Status: stat.ILPStatus,
	}
	rep.Reuse = obsv.ExplainReuse{
		PlanReused:        stat.PlanReused,
		ProbReused:        stat.ProbReused,
		SplicedPartitions: stat.SplicedPartitions,
		ConflictEdges:     stat.ConflictEdges,
		SkippedVertices:   stat.SkippedVertices,
		AddedR2Tuples:     stat.AddedR2Tuples,
	}
	return rep
}

// ratio is n/d guarding the empty-denominator case.
func ratio(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}
