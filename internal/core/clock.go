package core

import "time"

// now and since are the solver's only wall-clock access. All readings land
// in Stats timing fields, which are observability metadata: no solver
// decision reads them, the service codec scrubs them from cached response
// bodies before they are stored under a content-addressed key, and the
// determinism contract ("same input, same bytes") is therefore untouched
// by clock skew. Keeping the two calls here gives the wallclock analyzer a
// single audited escape hatch — new time.Now calls elsewhere in the solver
// still fire.

func now() time.Time {
	return time.Now() //lint:wallclock timings feed Stats only; scrubbed from cached bodies, never read by solver decisions
}

func since(t time.Time) time.Duration {
	return time.Since(t) //lint:wallclock timings feed Stats only; scrubbed from cached bodies, never read by solver decisions
}
