package core

import (
	"testing"

	"repro/internal/census"
	"repro/internal/metrics"
)

func censusInput(t *testing.T, hh, nCC int, good bool, goodDC bool) Input {
	t.Helper()
	d := census.Generate(census.Config{Households: hh, Areas: 6, Seed: 11})
	var in Input
	in.R1, in.R2 = d.Persons, d.Housing
	in.K1, in.K2, in.FK = "pid", "hid", "hid"
	if good {
		in.CCs = d.GoodCCs(nCC)
	} else {
		in.CCs = d.BadCCs(nCC)
	}
	if goodDC {
		in.DCs = census.GoodDCs()
	} else {
		in.DCs = census.AllDCs()
	}
	return in
}

// TestHybridOnCensusGoodCCs reproduces the paper's headline result for
// S_good_CC (Figure 8a): zero DC error and zero CC error.
func TestHybridOnCensusGoodCCs(t *testing.T) {
	in := censusInput(t, 150, 60, true, false)
	res, err := Solve(in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, in, res)
	errs := metrics.CCErrors(res.VJoin, in.CCs)
	nonzero := 0
	for i, e := range errs {
		if e != 0 {
			nonzero++
			t.Logf("CC %s: err %v (count %d, target %d)", in.CCs[i].Name, e, res.VJoin.Count(in.CCs[i].Pred), in.CCs[i].Target)
		}
	}
	if nonzero != 0 {
		t.Errorf("%d/%d good CCs violated (want 0)", nonzero, len(errs))
	}
	if res.Stats.CCsToILP != 0 {
		t.Errorf("good CCs routed to ILP: %d", res.Stats.CCsToILP)
	}
}

// TestHybridOnCensusBadCCs reproduces Figure 8b's hybrid row: zero DC
// error, zero *median* CC error, small mean error.
func TestHybridOnCensusBadCCs(t *testing.T) {
	in := censusInput(t, 150, 60, false, false)
	res, err := Solve(in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, in, res)
	errs := metrics.CCErrors(res.VJoin, in.CCs)
	if med := metrics.Median(errs); med > 0.05 {
		t.Errorf("median CC error = %v, want ~0", med)
	}
	if mean := metrics.Mean(errs); mean > 0.25 {
		t.Errorf("mean CC error = %v, too high", mean)
	}
	if res.Stats.CCsToILP == 0 {
		t.Error("bad CCs should exercise the ILP")
	}
}

// TestBaselineComparisonShape checks the qualitative ordering of Figure 8:
// the plain baseline has substantial CC error and nonzero DC error; the
// baseline with marginals fixes CCs but still violates DCs; the hybrid
// satisfies both.
func TestBaselineComparisonShape(t *testing.T) {
	in := censusInput(t, 120, 40, true, false)

	base, err := Solve(in, BaselineOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	marg, err := Solve(censusInput(t, 120, 40, true, false), BaselineMarginalsOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Solve(censusInput(t, 120, 40, true, false), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	dcs := in.DCs
	baseDC := metrics.DCErrorFraction(base.R1Hat, "hid", dcs)
	margDC := metrics.DCErrorFraction(marg.R1Hat, "hid", dcs)
	hybDC := metrics.DCErrorFraction(hyb.R1Hat, "hid", dcs)
	if hybDC != 0 {
		t.Errorf("hybrid DC error = %v, want 0", hybDC)
	}
	if baseDC == 0 {
		t.Error("plain baseline reported zero DC error (expected violations from random FK)")
	}
	if margDC == 0 {
		t.Error("baseline+marginals reported zero DC error")
	}

	baseCC := metrics.Median(metrics.CCErrors(base.VJoin, in.CCs))
	hybCC := metrics.Median(metrics.CCErrors(hyb.VJoin, in.CCs))
	if hybCC != 0 {
		t.Errorf("hybrid median CC error = %v", hybCC)
	}
	if baseCC <= hybCC {
		t.Errorf("baseline CC error %v not worse than hybrid %v", baseCC, hybCC)
	}
}

// TestHybridWithAllDCsOnBadCCs is the hardest §6 configuration: DC
// guarantee must hold regardless.
func TestHybridWithAllDCsOnBadCCs(t *testing.T) {
	in := censusInput(t, 100, 50, false, false)
	res, err := Solve(in, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, in, res)
}

// TestHybridManySeeds is a randomized robustness sweep: the DC guarantee
// and join-size invariant must hold for every seed.
func TestHybridManySeeds(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		d := census.Generate(census.Config{Households: 60, Areas: 4, Seed: seed})
		in := Input{R1: d.Persons, R2: d.Housing, K1: "pid", K2: "hid", FK: "hid",
			CCs: d.BadCCs(30), DCs: census.AllDCs()}
		res, err := Solve(in, Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkSolution(t, in, res)
	}
}

// TestExtraColumnsSolve exercises the Figure 12 configurations.
func TestExtraColumnsSolve(t *testing.T) {
	for _, extra := range []int{0, 2, 4, 8} {
		d := census.Generate(census.Config{Households: 80, Areas: 4, ExtraCols: extra, Seed: 5})
		in := Input{R1: d.Persons, R2: d.Housing, K1: "pid", K2: "hid", FK: "hid",
			CCs: d.GoodCCs(30), DCs: census.GoodDCs()}
		res, err := Solve(in, Options{Seed: 5})
		if err != nil {
			t.Fatalf("extra=%d: %v", extra, err)
		}
		checkSolution(t, in, res)
	}
}
