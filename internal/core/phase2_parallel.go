package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/hypergraph"
	"repro/internal/table"
)

// colorPartitionsParallel implements the Appendix A.3 optimization: the
// per-partition conflict hypergraphs are independent (candidate keys are
// disjoint across partitions), so graph construction and the first
// list-coloring pass run concurrently across a worker pool. The serial
// tail — minting fresh keys for skipped vertices and appending tuples to
// R̂2 — is inherently ordered and stays on the caller's goroutine, keeping
// results byte-identical to the sequential path.
func (ph *phase2) colorPartitionsParallel(parts map[string][]int, workers int) error {
	p := ph.p
	keys := make([]string, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	p.stat.Partitions = len(keys)

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(keys) {
		workers = len(keys)
	}
	if workers < 1 {
		workers = 1
	}

	type partResult struct {
		graph    *hypergraph.Graph
		palette  []table.Value
		coloring hypergraph.Coloring
		skipped  []int
	}
	results := make([]partResult, len(keys))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rows := parts[keys[i]]
				g := hypergraph.New(len(rows))
				ph.buildConflicts(g, rows)
				palette := ph.partitionKeys(keys[i])
				idx := make([]int, len(palette))
				for j := range idx {
					idx[j] = j
				}
				allowed := func(int) []int { return idx }
				coloring := hypergraph.NewColoring(len(rows))
				var skipped []int
				if p.opt.Order == OrderInput {
					coloring, skipped = g.ColoringInputOrder(coloring, allowed)
				} else {
					coloring, skipped = g.ColoringLF(coloring, allowed)
				}
				results[i] = partResult{graph: g, palette: palette, coloring: coloring, skipped: skipped}
			}
		}()
	}
	for i := range keys {
		next <- i
	}
	close(next)
	wg.Wait()

	// Serial tail: fresh colors, R̂2 augmentation, FK recording.
	for i, k := range keys {
		r := results[i]
		p.stat.ConflictEdges += r.graph.NumEdges()
		p.stat.SkippedVertices += len(r.skipped)
		palette := r.palette
		coloring := r.coloring
		if len(r.skipped) > 0 {
			freshIdx := make([]int, len(r.skipped))
			for j := range r.skipped {
				palette = append(palette, ph.fresh.mint())
				freshIdx[j] = len(palette) - 1
			}
			allowedFresh := func(int) []int { return freshIdx }
			var left []int
			if p.opt.Order == OrderInput {
				coloring, left = r.graph.ColoringInputOrder(coloring, allowedFresh)
			} else {
				coloring, left = r.graph.ColoringLF(coloring, allowedFresh)
			}
			if len(left) > 0 {
				return fmt.Errorf("core: phase 2 (parallel): %d vertices uncolorable", len(left))
			}
			usedFresh := make(map[int]bool)
			for _, c := range coloring {
				if c >= len(palette)-len(r.skipped) {
					usedFresh[c] = true
				}
			}
			for _, fi := range freshIdx {
				if usedFresh[fi] {
					ph.appendR2Tuple(palette[fi], k)
				}
			}
		}
		for li, ri := range parts[k] {
			key := palette[coloring[li]]
			ph.fk[ri] = key
			ph.keyRows[key] = append(ph.keyRows[key], ri)
		}
	}
	return nil
}
