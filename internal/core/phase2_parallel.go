package core

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/sched"
	"repro/internal/table"
)

// coloredPart is the order-independent output of one partition's heavy
// work: the conflict hypergraph, the base palette, and the first
// list-coloring pass over it — or, on the session path, a pointer to the
// prior solve's memo entry when the partition can be replayed instead of
// recomputed (spliced non-nil; the other fields are then unset).
type coloredPart struct {
	graph    *hypergraph.Graph
	palette  []table.Value
	coloring hypergraph.Coloring
	skipped  []int
	spliced  *memoPart
}

// colorPartitions runs Algorithm 4 over the partitions, streamed through
// the shared worker pool (the Appendix A.3 optimization, without the
// barrier the seed had between partition discovery and coloring): each
// partition's conflict hypergraph is built and base-colored as a pure
// function on a worker, while the serial tail — minting fresh keys for
// skipped vertices, appending tuples to R̂2, recording FKs, all of which
// touch shared ordered state — consumes results in canonical partition
// order as they arrive. Later partitions color while earlier ones merge,
// and the output is byte-identical to the sequential path (a nil pool runs
// exactly that sequential loop).
func (ph *phase2) colorPartitions(parts []partition) error {
	p := ph.p
	p.stat.Partitions = len(parts)
	var memo *solveMemo
	if p.capture {
		memo = newSolveMemo()
	}
	var firstErr error
	sched.Ordered(p.pool, len(parts), func(i int) coloredPart {
		// Splice check on the worker: it reads only immutable inputs (the
		// retained memos, the new partition, the DC-referenced columns of
		// V_Join). The fresh-key condition is checked in the serial tail.
		if mp := p.spliceable(parts[i]); mp != nil {
			return coloredPart{spliced: mp}
		}
		return ph.colorPart(parts[i])
	}, func(i int, r coloredPart) {
		if firstErr != nil {
			return
		}
		if r.spliced != nil {
			ok, err := ph.spliceFinish(parts[i], r.spliced, memo)
			if err != nil {
				firstErr = err
				return
			}
			if ok {
				return
			}
			// Fresh-key state diverged from the memo's entry point: this
			// partition mints, so it must be recomputed (serially — rare).
			r = ph.colorPart(parts[i])
		}
		if err := ph.finishPart(parts[i], r, memo); err != nil {
			firstErr = err
		}
	})
	p.captured = memo
	return firstErr
}

// colorPart builds the conflict hypergraph for one partition and colors it
// from the partition's base palette (Algorithm 3 over Def. 5.1 conflicts).
// It reads only immutable solver state and may run on any worker.
func (ph *phase2) colorPart(pt partition) coloredPart {
	p := ph.p
	g := hypergraph.New(len(pt.rows))
	ph.buildConflicts(g, pt.rows)
	palette := ph.partitionKeys(pt.combo)
	baseIdx := make([]int, len(palette))
	for i := range baseIdx {
		baseIdx[i] = i
	}
	allowed := func(int) []int { return baseIdx }
	coloring := hypergraph.NewColoring(len(pt.rows))
	var skipped []int
	if p.opt.Order == OrderInput {
		coloring, skipped = g.ColoringInputOrder(coloring, allowed)
	} else {
		coloring, skipped = g.ColoringLF(coloring, allowed)
	}
	return coloredPart{graph: g, palette: palette, coloring: coloring, skipped: skipped}
}

// finishPart is the serial tail of one partition: repair skipped vertices
// with fresh colors, materialize the corresponding new R̂2 tuples
// (Algorithm 4, lines 11–14), and record the FK assignment. With memo
// non-nil (the session path) the partition's outcome — row set, FK
// assignment, fresh-key trace — is recorded for splicing by the next solve.
func (ph *phase2) finishPart(pt partition, r coloredPart, memo *solveMemo) error {
	p := ph.p
	p.stat.ConflictEdges += r.graph.NumEdges()
	p.stat.SkippedVertices += len(r.skipped)
	enterNext := ph.fresh.next
	var minted []mintRec
	palette := r.palette
	coloring := r.coloring
	if len(r.skipped) > 0 {
		freshIdx := make([]int, len(r.skipped))
		for i := range r.skipped {
			palette = append(palette, ph.fresh.mint())
			freshIdx[i] = len(palette) - 1
		}
		allowedFresh := func(int) []int { return freshIdx }
		var left []int
		if p.opt.Order == OrderInput {
			coloring, left = r.graph.ColoringInputOrder(coloring, allowedFresh)
		} else {
			coloring, left = r.graph.ColoringLF(coloring, allowedFresh)
		}
		if len(left) > 0 {
			return fmt.Errorf("core: phase 2: %d vertices uncolorable with %d fresh colors", len(left), len(r.skipped))
		}
		usedFresh := make(map[int]bool)
		for _, c := range coloring {
			if c >= len(palette)-len(r.skipped) {
				usedFresh[c] = true
			}
		}
		if memo != nil {
			minted = make([]mintRec, len(freshIdx))
		}
		for i, fi := range freshIdx {
			if memo != nil {
				minted[i] = mintRec{key: palette[fi], appended: usedFresh[fi]}
			}
			if usedFresh[fi] {
				ph.appendR2Tuple(palette[fi], pt.combo)
			}
		}
	}
	var fkOut []table.Value
	if memo != nil {
		fkOut = make([]table.Value, len(pt.rows))
	}
	for li, ri := range pt.rows {
		key := palette[coloring[li]]
		ph.fk[ri] = key
		ph.keyRows[key] = append(ph.keyRows[key], ri)
		if memo != nil {
			fkOut[li] = key
		}
	}
	if memo != nil {
		memo.parts[pt.combo] = &memoPart{n: len(pt.rows), vals: p.dcVals(pt.rows), fk: fkOut,
			minted: minted, enterNext: enterNext, edges: r.graph.NumEdges(), skipped: len(r.skipped)}
	}
	return nil
}
