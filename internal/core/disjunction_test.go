package core

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/metrics"
)

// TestDisjunctiveCCEndToEnd exercises the disjunction extension the paper
// sketches after Def. 2.4: a CC counting owners OR spouses in one area.
func TestDisjunctiveCCEndToEnd(t *testing.T) {
	in := paperInput(t)
	dcc, err := constraint.ParseCC(
		"cc adults: count(Rel = 'Owner', Area = 'Chicago' | Rel = 'Spouse', Area = 'Chicago') = 5")
	if err != nil {
		t.Fatal(err)
	}
	if !dcc.IsDisjunctive() || len(dcc.Disjuncts()) != 2 {
		t.Fatalf("parsed CC not disjunctive: %+v", dcc)
	}
	in.CCs = append(in.CCs, dcc)
	res, err := Solve(in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, in, res)
	errs := metrics.CCErrors(res.VJoin, in.CCs)
	for i, e := range errs {
		if e != 0 {
			t.Errorf("CC %d (%s): error %v", i, in.CCs[i], e)
		}
	}
}

// TestDisjunctiveCCRoutedToILP: the hybrid must never hand a disjunctive
// CC to Algorithm 2, even when it is the only constraint.
func TestDisjunctiveCCRoutedToILP(t *testing.T) {
	in := paperInput(t)
	dcc, err := constraint.ParseCC(
		"cc: count(Rel = 'Owner', Area = 'NYC' | Rel = 'Spouse', Area = 'NYC') = 2")
	if err != nil {
		t.Fatal(err)
	}
	in.CCs = []constraint.CC{dcc}
	res, err := Solve(in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CCsToILP != 1 || res.Stats.CCsToHasse != 0 {
		t.Errorf("routing = %d Hasse / %d ILP, want 0/1", res.Stats.CCsToHasse, res.Stats.CCsToILP)
	}
	checkSolution(t, in, res)
	if e := metrics.CCErrors(res.VJoin, in.CCs)[0]; e != 0 {
		t.Errorf("disjunctive CC error %v", e)
	}
}

// TestDisjunctiveUnionSemantics: overlapping disjuncts must count rows
// once, not twice.
func TestDisjunctiveUnionSemantics(t *testing.T) {
	in := paperInput(t)
	// Disjuncts overlap: owners, and people over 20 — all Chicago owners
	// are also over 20. Target is the union size under Figure 3's solution
	// shape: 4 owners + spouse(24) + nobody else over 20 among children.
	dcc, err := constraint.ParseCC(
		"cc u: count(Rel = 'Owner', Area = 'Chicago' | Age > 20, Area = 'Chicago') = 5")
	if err != nil {
		t.Fatal(err)
	}
	in.CCs = append(in.CCs, dcc)
	res, err := Solve(in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := dcc.CountIn(res.VJoin); got != 5 {
		t.Errorf("union count = %d, want 5", got)
	}
}

func TestDisjunctiveRenderRoundTrip(t *testing.T) {
	src := "cc x: count(Rel = 'Owner', Area = 'Chicago' | Rel = 'Spouse') = 5"
	cc, err := constraint.ParseCC(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := constraint.ParseCC(constraint.RenderCC(cc))
	if err != nil {
		t.Fatalf("%q: %v", constraint.RenderCC(cc), err)
	}
	if !back.IsDisjunctive() || len(back.OrElse) != 1 || back.Target != 5 {
		t.Errorf("round trip: %+v", back)
	}
}

func TestDisjunctiveClassification(t *testing.T) {
	a, _ := constraint.ParseCC("cc: count(Rel = 'Owner' | Rel = 'Spouse') = 5")
	b, _ := constraint.ParseCC("cc: count(Rel = 'Child') = 2")
	isR2 := func(c string) bool { return c == "Area" }
	if got := constraint.Classify(a, b, isR2); got != constraint.RelIntersecting {
		t.Errorf("disjunctive classification = %v, want intersecting (conservative)", got)
	}
}
