package core

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/metrics"
	"repro/internal/table"
)

// paperInput builds the running example of the paper: Figure 1's relations
// and Figure 2's constraints (Rel 'Child' stands for the child DCs; the
// Multi-ling column is shortened to Multi).
func paperInput(t *testing.T) Input {
	t.Helper()
	r1 := table.NewRelation("Persons", table.NewSchema(
		table.IntCol("pid"), table.IntCol("Age"), table.StrCol("Rel"), table.IntCol("Multi"), table.IntCol("hid")))
	rows := []struct {
		pid, age int64
		rel      string
		multi    int64
	}{
		{1, 75, "Owner", 0}, {2, 75, "Owner", 1}, {3, 25, "Owner", 0},
		{4, 25, "Owner", 1}, {5, 24, "Spouse", 0}, {6, 10, "Child", 1},
		{7, 10, "Child", 1}, {8, 30, "Owner", 0}, {9, 30, "Owner", 1},
	}
	for _, x := range rows {
		r1.MustAppend(table.Int(x.pid), table.Int(x.age), table.String(x.rel), table.Int(x.multi), table.Null())
	}
	r2 := table.NewRelation("Housing", table.NewSchema(table.IntCol("hid"), table.StrCol("Area")))
	areas := []string{"Chicago", "Chicago", "Chicago", "Chicago", "NYC", "NYC"}
	for i, a := range areas {
		r2.MustAppend(table.Int(int64(i+1)), table.String(a))
	}
	src := `
cc cc1: count(Rel = 'Owner', Area = 'Chicago') = 4
cc cc2: count(Rel = 'Owner', Area = 'NYC') = 2
cc cc3: count(Age <= 24, Area = 'Chicago') = 3
cc cc4: count(Multi = 1, Area = 'Chicago') = 4
dc oo: deny t1.Rel = 'Owner' & t2.Rel = 'Owner'
dc osl: deny t1.Rel = 'Owner' & t2.Rel = 'Spouse' & t2.Age < t1.Age - 50
dc osu: deny t1.Rel = 'Owner' & t2.Rel = 'Spouse' & t2.Age > t1.Age + 50
dc ocl: deny t1.Rel = 'Owner' & t1.Multi = 1 & t2.Rel = 'Child' & t2.Age < t1.Age - 50
dc ocu: deny t1.Rel = 'Owner' & t1.Multi = 1 & t2.Rel = 'Child' & t2.Age > t1.Age - 12
`
	ccs, dcs, err := constraint.ParseConstraints(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return Input{R1: r1, R2: r2, K1: "pid", K2: "hid", FK: "hid", CCs: ccs, DCs: dcs}
}

// checkSolution asserts the paper's guarantees (Prop. 5.5): every FK filled,
// zero DC violations, and R̂1 ⋈ R̂2 consistent with the reported view.
func checkSolution(t *testing.T, in Input, res *Result) {
	t.Helper()
	for i := 0; i < res.R1Hat.Len(); i++ {
		if res.R1Hat.Value(i, in.FK).IsNull() {
			t.Fatalf("row %d: FK not filled", i)
		}
	}
	if res.VJoin.Len() != in.R1.Len() {
		t.Fatalf("|VJoin| = %d, want %d (dangling FK?)", res.VJoin.Len(), in.R1.Len())
	}
	if frac := metrics.DCErrorFraction(res.R1Hat, in.FK, in.DCs); frac != 0 {
		t.Fatalf("DC error = %v, want 0", frac)
	}
	// Key integrity of R̂2.
	if _, err := table.KeyIndex(res.R2Hat, in.K2); err != nil {
		t.Fatalf("R̂2 keys broken: %v", err)
	}
}

func TestHybridSolvesPaperExample(t *testing.T) {
	in := paperInput(t)
	res, err := Solve(in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, in, res)
	errs := metrics.CCErrors(res.VJoin, in.CCs)
	for i, e := range errs {
		if e != 0 {
			t.Errorf("CC %d (%s): error %v, count %d", i, in.CCs[i], e, res.VJoin.Count(in.CCs[i].Pred))
		}
	}
	if res.Stats.AddedR2Tuples != 0 {
		t.Errorf("added %d R2 tuples; paper example needs none", res.Stats.AddedR2Tuples)
	}
}

func TestHybridRoutesIntersectingCCsToILP(t *testing.T) {
	in := paperInput(t)
	res, err := Solve(in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// CC1/CC3/CC4 intersect pairwise (overlapping R1 predicates over
	// different attributes), and CC2 intersects CC3/CC4 too (its R1 part
	// "Rel = Owner" is neither identical to nor disjoint from theirs), so
	// the whole component is routed to the ILP.
	if res.Stats.CCsToHasse != 0 || res.Stats.CCsToILP != 4 {
		t.Errorf("split = %d Hasse / %d ILP, want 0/4", res.Stats.CCsToHasse, res.Stats.CCsToILP)
	}
}

// TestHybridSplitsSeparableCCs uses a CC family designed to be
// intersection-free (per-Rel disjoint R1 templates crossed with areas) plus
// one intersecting pair, and checks the split isolates the pair.
func TestHybridSplitsSeparableCCs(t *testing.T) {
	in := paperInput(t)
	src := `
cc: count(Rel = 'Owner', Area = 'Chicago') = 4
cc: count(Rel = 'Owner', Area = 'NYC') = 2
cc: count(Rel = 'Spouse', Area = 'Chicago') = 1
cc: count(Rel = 'Child', Area = 'Chicago') = 2
cc: count(Age in [0,24], Area = 'NYC') = 0
cc: count(Age in [10,30], Area = 'Chicago') = 5
`
	ccs, _, err := constraint.ParseConstraints(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	in.CCs = ccs
	res, err := Solve(in, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The four Rel-based CCs are pairwise disjoint; the two Age CCs
	// intersect each other and remain apart from the Rel CCs only through
	// intersection, dragging nothing else in... except that Age and Rel
	// predicates also intersect. Components over "not disjoint": Age CCs
	// intersect Rel CCs (overlapping tuples, different attributes), so all
	// six end up in one ILP component.
	if res.Stats.CCsToILP != 6 {
		t.Errorf("CCsToILP = %d, want 6", res.Stats.CCsToILP)
	}
	// A truly separable family: pure Rel templates only.
	in2 := paperInput(t)
	src2 := `
cc: count(Rel = 'Owner', Area = 'Chicago') = 4
cc: count(Rel = 'Owner', Area = 'NYC') = 2
cc: count(Rel = 'Spouse', Area = 'Chicago') = 1
cc: count(Rel = 'Child', Area = 'Chicago') = 2
`
	ccs2, _, err := constraint.ParseConstraints(strings.NewReader(src2))
	if err != nil {
		t.Fatal(err)
	}
	in2.CCs = ccs2
	res2, err := Solve(in2, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.CCsToHasse != 4 || res2.Stats.CCsToILP != 0 {
		t.Errorf("split = %d/%d, want 4/0", res2.Stats.CCsToHasse, res2.Stats.CCsToILP)
	}
	checkSolution(t, in2, res2)
	for i, e := range metrics.CCErrors(res2.VJoin, in2.CCs) {
		if e != 0 {
			t.Errorf("CC %d error %v", i, e)
		}
	}
}

func TestILPOnlyModeSolvesPaperExample(t *testing.T) {
	in := paperInput(t)
	res, err := Solve(in, Options{Mode: ModeILPOnly, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, in, res)
	for i, e := range metrics.CCErrors(res.VJoin, in.CCs) {
		if e != 0 {
			t.Errorf("CC %d error %v", i, e)
		}
	}
}

func TestBaselineViolatesDCsButNotCrash(t *testing.T) {
	in := paperInput(t)
	res, err := Solve(in, BaselineOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	// All FKs assigned; join total.
	if res.VJoin.Len() != in.R1.Len() {
		t.Fatalf("|VJoin| = %d", res.VJoin.Len())
	}
	// With 6 owners and random assignment among <=4 homes per area, an
	// owner-owner violation is essentially certain for this seed; assert
	// only that the metric is computable and in range.
	frac := metrics.DCErrorFraction(res.R1Hat, in.FK, in.DCs)
	if frac < 0 || frac > 1 {
		t.Errorf("DC fraction = %v", frac)
	}
}

func TestBaselineMarginalsSatisfiesCCs(t *testing.T) {
	in := paperInput(t)
	res, err := Solve(in, BaselineMarginalsOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range metrics.CCErrors(res.VJoin, in.CCs) {
		if e != 0 {
			t.Errorf("CC %d error %v (baseline with marginals should satisfy CCs)", i, e)
		}
	}
}

func TestHasseOnlyMode(t *testing.T) {
	in := paperInput(t)
	res, err := Solve(in, Options{Mode: ModeHasseOnly, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, in, res) // DCs still guaranteed
}

func TestNoPartitionAblationMatchesGuarantees(t *testing.T) {
	in := paperInput(t)
	res, err := Solve(in, Options{Seed: 1, NoPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, in, res)
}

func TestInputOrderColoring(t *testing.T) {
	in := paperInput(t)
	res, err := Solve(in, Options{Seed: 1, Order: OrderInput})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, in, res)
}

func TestDeterministicAcrossRuns(t *testing.T) {
	in := paperInput(t)
	a, err := Solve(in, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	in2 := paperInput(t)
	b, err := Solve(in2, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.R1Hat.Len(); i++ {
		if a.R1Hat.Value(i, "hid") != b.R1Hat.Value(i, "hid") {
			t.Fatalf("row %d differs between identical runs", i)
		}
	}
}

func TestNoCCs(t *testing.T) {
	in := paperInput(t)
	in.CCs = nil
	res, err := Solve(in, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, in, res)
}

func TestNoDCs(t *testing.T) {
	in := paperInput(t)
	in.DCs = nil
	res, err := Solve(in, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.VJoin.Len() != in.R1.Len() {
		t.Fatal("join incomplete")
	}
	for i, e := range metrics.CCErrors(res.VJoin, in.CCs) {
		if e != 0 {
			t.Errorf("CC %d error %v", i, e)
		}
	}
}

func TestNoConstraintsAtAll(t *testing.T) {
	in := paperInput(t)
	in.CCs, in.DCs = nil, nil
	res, err := Solve(in, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, in, res)
}

func TestEmptyR1(t *testing.T) {
	in := paperInput(t)
	in.R1 = table.NewRelation("Persons", in.R1.Schema())
	res, err := Solve(in, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.R1Hat.Len() != 0 || res.VJoin.Len() != 0 {
		t.Error("empty R1 mishandled")
	}
}

// DCs forming a clique larger than R2's capacity force fresh tuples in R̂2
// (the paper's "artificially adding tuples", Algorithm 4 lines 13–14).
func TestCliqueForcesR2Augmentation(t *testing.T) {
	in := paperInput(t)
	// Shrink Housing to two Chicago homes and one NYC home: 4 Chicago
	// owners cannot fit 2 homes.
	r2 := table.NewRelation("Housing", in.R2.Schema())
	r2.MustAppend(table.Int(1), table.String("Chicago"))
	r2.MustAppend(table.Int(2), table.String("Chicago"))
	r2.MustAppend(table.Int(3), table.String("NYC"))
	in.R2 = r2
	// Adjust CC targets to remain satisfiable w.r.t. areas.
	res, err := Solve(in, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, in, res)
	if res.Stats.AddedR2Tuples == 0 {
		t.Error("expected artificial R2 tuples")
	}
	if res.R2Hat.Len() <= 3 {
		t.Errorf("R2Hat size = %d", res.R2Hat.Len())
	}
}

func TestUnsatisfiableCCsDegradeGracefully(t *testing.T) {
	in := paperInput(t)
	// Demand 100 Chicago owners; only 6 owners exist.
	in.CCs[0].Target = 100
	res, err := Solve(in, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, in, res) // DC guarantee must survive
	errs := metrics.CCErrors(res.VJoin, in.CCs)
	if errs[0] == 0 {
		t.Error("impossible CC reported satisfied")
	}
}

func TestValidationErrors(t *testing.T) {
	in := paperInput(t)
	in.K1 = "nope"
	if _, err := Solve(in, Options{}); err == nil {
		t.Error("bad K1 accepted")
	}
	in = paperInput(t)
	in.CCs = append(in.CCs, constraint.CC{Pred: table.And(table.Eq("Ghost", table.Int(1))), Target: 1})
	if _, err := Solve(in, Options{}); err == nil {
		t.Error("CC over unknown column accepted")
	}
	in = paperInput(t)
	in.CCs[0].Target = -5
	if _, err := Solve(in, Options{}); err == nil {
		t.Error("negative target accepted")
	}
	in = paperInput(t)
	in.CCs = append(in.CCs, constraint.CC{Pred: table.And(table.Eq("pid", table.Int(1))), Target: 1})
	if _, err := Solve(in, Options{}); err == nil {
		t.Error("CC over key column accepted")
	}
	in = paperInput(t)
	dc, _ := constraint.ParseDC("dc: deny t1.Area = 'Chicago' & t2.Area = 'Chicago'")
	in.DCs = append(in.DCs, dc)
	if _, err := Solve(in, Options{}); err == nil {
		t.Error("DC over R2 column accepted")
	}
}

func TestStatsPopulated(t *testing.T) {
	in := paperInput(t)
	res, err := Solve(in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Total <= 0 || s.Phase1 <= 0 || s.Phase2 <= 0 {
		t.Errorf("timers not populated: %+v", s)
	}
	if s.Partitions == 0 {
		t.Error("no partitions recorded")
	}
	if s.ConflictEdges == 0 {
		t.Error("no conflict edges recorded (owner cliques expected)")
	}
}
