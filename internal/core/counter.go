package core

// ccCounter tracks the current CC counts over the (partially) filled
// V_Join so that solveInvalidTuples can pick combos that minimize the
// marginal CC error (§5.2).
type ccCounter struct {
	p      *prob
	counts []int64
	// rowOK caches, for the row passed to prepare, whether each CC
	// disjunct's R1 part holds — so ranking that row against every combo is
	// pure table lookups.
	rowOK [][]bool
}

// newCCCounter counts every filled row against every CC. Rather than the
// old every-row×every-CC scan, each disjunct's R1 part selects its rows
// through the columnar index (posting-list driven for equality atoms) and
// the R2 part reduces to the precomputed per-combo boolean; a filled row's
// usedBCols hold exactly its combo's values, so the split is exact.
//
// The counter only exists while invalid tuples are being repaired, which
// requires usedBCols to be non-empty (with no B columns in play every row
// is trivially complete and phase II never gets here).
func newCCCounter(p *prob) *ccCounter {
	c := &ccCounter{p: p, counts: make([]int64, len(p.in.CCs))}
	var mark []int // dedup across disjuncts, epoch-stamped per CC
	epoch := 0
	for j := range p.in.CCs {
		disjuncts := p.ccR1b[j]
		if len(disjuncts) > 1 && mark == nil {
			mark = make([]int, p.vjoin.Len())
		}
		epoch++
		for d := range disjuncts {
			cm := p.ccComboMatch[j][d]
			for _, i := range p.colView.Select(disjuncts[d]) {
				if len(disjuncts) > 1 && mark[i] == epoch {
					continue
				}
				co := p.comboOf[i]
				if co < 0 || !cm[co] {
					continue // unfilled, or combo outside the R2 part
				}
				if len(disjuncts) > 1 {
					mark[i] = epoch
				}
				c.counts[j]++
			}
		}
	}
	return c
}

// errOf is the relative CC error contribution used throughout §6:
// |count − target| / max(10, target).
func errOf(count, target int64) float64 {
	d := count - target
	if d < 0 {
		d = -d
	}
	den := target
	if den < 10 {
		den = 10
	}
	return float64(d) / float64(den)
}

// prepare caches row i's R1-part matches for every CC disjunct. delta and
// commit refer to the prepared row; the cache stays valid because R1 parts
// only touch immutable columns.
func (ct *ccCounter) prepare(i int) {
	if ct.rowOK == nil {
		ct.rowOK = make([][]bool, len(ct.p.in.CCs))
		for j := range ct.rowOK {
			ct.rowOK[j] = make([]bool, len(ct.p.ccR1b[j]))
		}
	}
	for j := range ct.p.ccR1b {
		for d := range ct.p.ccR1b[j] {
			ct.rowOK[j][d] = ct.p.ccR1b[j][d].Eval(i)
		}
	}
}

// matches reports whether the prepared row paired with combo c would
// contribute to CC j's count: some disjunct's R1 part holds on the row and
// its R2 part holds on the combo.
func (ct *ccCounter) matches(j, c int) bool {
	for d, ok := range ct.rowOK[j] {
		if ok && ct.p.ccComboMatch[j][d][c] {
			return true
		}
	}
	return false
}

// delta returns the total CC error change caused by assigning combo c to
// the prepared (currently-unfilled) row.
func (ct *ccCounter) delta(c int) float64 {
	d := 0.0
	for j := range ct.p.in.CCs {
		if !ct.matches(j, c) {
			continue
		}
		t := ct.p.in.CCs[j].Target
		d += errOf(ct.counts[j]+1, t) - errOf(ct.counts[j], t)
	}
	return d
}

// commit records that the prepared row now carries combo c.
func (ct *ccCounter) commit(c int) {
	for j := range ct.p.in.CCs {
		if ct.matches(j, c) {
			ct.counts[j]++
		}
	}
}
