package core

// ccCounter tracks the current CC counts over the (partially) filled
// V_Join so that solveInvalidTuples can pick combos that minimize the
// marginal CC error (§5.2).
type ccCounter struct {
	p      *prob
	counts []int64
}

// newCCCounter counts every filled row against every CC.
func newCCCounter(p *prob) *ccCounter {
	c := &ccCounter{p: p, counts: make([]int64, len(p.in.CCs))}
	s := p.vjoin.Schema()
	for i := 0; i < p.vjoin.Len(); i++ {
		if !p.filled(i) {
			continue
		}
		row := p.vjoin.Row(i)
		for j, cc := range p.in.CCs {
			if cc.MatchRow(s, row) {
				c.counts[j]++
			}
		}
	}
	return c
}

// errOf is the relative CC error contribution used throughout §6:
// |count − target| / max(10, target).
func errOf(count, target int64) float64 {
	d := count - target
	if d < 0 {
		d = -d
	}
	den := target
	if den < 10 {
		den = 10
	}
	return float64(d) / float64(den)
}

// delta returns the total CC error change caused by assigning combo c to
// the currently-unfilled row i.
func (ct *ccCounter) delta(i, c int) float64 {
	d := 0.0
	for j := range ct.p.in.CCs {
		if !ct.p.ccMatchesPair(j, i, c) {
			continue
		}
		t := ct.p.in.CCs[j].Target
		d += errOf(ct.counts[j]+1, t) - errOf(ct.counts[j], t)
	}
	return d
}

// commit records that row i now carries combo c.
func (ct *ccCounter) commit(i, c int) {
	for j := range ct.p.in.CCs {
		if ct.p.ccMatchesPair(j, i, c) {
			ct.counts[j]++
		}
	}
}
