package core

import (
	"repro/internal/constraint"
	"repro/internal/hasse"
)

// hasseExec is one execution context for Algorithm 2. In direct mode
// (base nil) assignments write straight into the shared problem state; in
// speculative mode the executor reads a shared immutable snapshot of the
// fill state plus its own small assignment overlay, recording proposals to
// be merged — or discarded and replayed — in canonical order by
// runHasseParallel. Sharing one snapshot keeps speculation memory
// O(rows + proposals) instead of O(subtrees × rows).
type hasseExec struct {
	p         *prob
	base      []int        // shared read-only fill snapshot; nil reads/writes p directly
	mine      map[int]bool // rows this execution has assigned
	proposals []fillProp
}

// fillProp is one speculative (row, combo) assignment.
type fillProp struct{ row, combo int }

func (e *hasseExec) filled(i int) bool {
	if e.base != nil {
		return len(e.p.usedBCols) == 0 || e.base[i] >= 0 || e.mine[i]
	}
	return e.p.filled(i)
}

func (e *hasseExec) assign(i, c int) {
	if e.base != nil {
		e.mine[i] = true
		e.proposals = append(e.proposals, fillProp{row: i, combo: c})
		return
	}
	e.p.assignCombo(i, c)
}

// runHasse is Algorithm 2: complete V_Join for a set of non-intersecting
// CCs organized in a Hasse forest. ccIdx lists the CC indices (into
// p.in.CCs) participating; forest was built over exactly those CCs in the
// same order. Shortfalls (fewer available tuples than a target) are
// tolerated; they surface later as CC error. With a worker pool attached
// the independent maximal subtrees run concurrently.
func (p *prob) runHasse(ccIdx []int, forest *hasse.Forest) {
	if p.pool != nil {
		p.runHasseParallel(ccIdx, forest)
		return
	}
	e := &hasseExec{p: p}
	for _, d := range forest.Diagrams {
		for _, m := range d.Maximal {
			e.solveDiagram(ccIdx, forest, m)
		}
	}
}

// solveDiagram processes the sub-diagram rooted at local node `node`
// bottom-up: children first (recursively), then the remaining tuples of the
// root's own target.
func (e *hasseExec) solveDiagram(ccIdx []int, forest *hasse.Forest, node int) {
	children := forest.Children[node]
	for _, c := range children {
		e.solveDiagram(ccIdx, forest, c)
	}
	cc := ccIdx[node]
	need := e.p.in.CCs[cc].Target
	for _, c := range children {
		need -= e.p.in.CCs[ccIdx[c]].Target
	}
	if need <= 0 {
		return
	}
	// Children's full predicates must be avoided so the root's extra tuples
	// do not inflate child counts (σ_m ∧ ¬σ_c, lines 12–13).
	avoidR1 := make([]int, 0, len(children))
	for _, c := range children {
		avoidR1 = append(avoidR1, ccIdx[c])
	}
	e.fillForCC(cc, need, avoidR1)
}

// fillForCC assigns up to need unfilled V_Join tuples a combo that
// satisfies CC cc's R2 part, choosing tuples satisfying its R1 part, while
// avoiding the full predicates of the listed CCs. Candidate tuples come
// from the columnar index (posting-list driven for equality atoms) in
// ascending row order — the same visit order as a full scan.
func (e *hasseExec) fillForCC(cc int, need int64, avoid []int) {
	p := e.p
	if need <= 0 {
		return
	}
	// Candidate combos for this CC, fixed order for determinism.
	var combosOK []int
	for c := range p.combos {
		if !p.ccComboMatch[cc][0][c] {
			continue
		}
		combosOK = append(combosOK, c)
	}
	if len(p.usedBCols) == 0 {
		return // nothing to assign; CC counts are fixed by R1 alone
	}
	if len(combosOK) == 0 {
		return // no active combo can realize this CC: unavoidable error
	}
	assigned := int64(0)
	comboCursor := 0
	p.colView.SelectFunc(p.ccR1b[cc][0], func(i int) bool {
		if e.filled(i) {
			return true
		}
		// Pick the first combo that avoids every child predicate for this
		// tuple, starting from a rotating cursor to spread assignments.
		chosen := -1
		for k := 0; k < len(combosOK); k++ {
			c := combosOK[(comboCursor+k)%len(combosOK)]
			if p.comboAvoids(i, c, avoid) {
				chosen = c
				comboCursor = (comboCursor + k + 1) % len(combosOK)
				break
			}
		}
		if chosen < 0 {
			return true
		}
		e.assign(i, chosen)
		assigned++
		return assigned < need
	})
}

// comboAvoids reports whether assigning combo c to row i keeps the row out
// of every avoided CC's selection (¬σ_c of Algorithm 2). It depends only on
// immutable predicate/combo state, never on the fill state.
func (p *prob) comboAvoids(i, c int, avoid []int) bool {
	for _, a := range avoid {
		if p.ccR1b[a][0].Eval(i) && p.ccComboMatch[a][0][c] {
			return false
		}
	}
	return true
}

// fillLeftoversUnused is lines 14–17 of Algorithm 2 (shared by the hybrid):
// every still-unfilled tuple gets a combination irrelevant to all CCs.
// Tuples that cannot be completed (combo_unused empty) remain null — the
// invalid tuples handled by Phase II's solveInvalidTuples. Returns the
// number of tuples completed here and the number left invalid.
func (p *prob) fillLeftoversUnused() (completedViaUnused, invalid int) {
	if len(p.usedBCols) == 0 {
		return 0, 0 // nothing to fill; every tuple is trivially complete
	}
	unused := p.comboUnused()
	cursor := 0
	for i := 0; i < p.vjoin.Len(); i++ {
		if p.filled(i) {
			continue
		}
		if len(unused) == 0 {
			invalid++
			continue
		}
		p.assignCombo(i, unused[cursor%len(unused)])
		cursor++
		completedViaUnused++
	}
	return completedViaUnused, invalid
}

// splitHybrid partitions the CC set from its pairwise classification: S1
// (handled by Algorithm 2) holds the connected components — over the "not
// disjoint" relation — that contain no intersecting pair and have
// single-maximal diagrams; S2 (Algorithm 1) holds the rest.
func (p *prob) splitHybrid(rel [][]constraint.Relationship) (s1, s2 []int) {
	n := len(p.in.CCs)

	// Components over "not disjoint".
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	nc := 0
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		stack := []int{i}
		comp[i] = nc
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for u := 0; u < n; u++ {
				if comp[u] < 0 && rel[v][u] != constraint.RelDisjoint {
					comp[u] = nc
					stack = append(stack, u)
				}
			}
		}
		nc++
	}
	bad := make([]bool, nc)
	for i := 0; i < n; i++ {
		// Disjunctive CCs always take the ILP path; Algorithm 2's recursion
		// assumes conjunctive range predicates.
		if p.in.CCs[i].IsDisjunctive() {
			bad[comp[i]] = true
		}
		for j := i + 1; j < n; j++ {
			if comp[i] == comp[j] && rel[i][j] == constraint.RelIntersecting {
				bad[comp[i]] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		if bad[comp[i]] {
			s2 = append(s2, i)
		} else {
			s1 = append(s1, i)
		}
	}
	return s1, s2
}

// subMatrix extracts the relationship submatrix for the given CC indices.
func subMatrix(rel [][]constraint.Relationship, idx []int) [][]constraint.Relationship {
	out := make([][]constraint.Relationship, len(idx))
	for a, i := range idx {
		out[a] = make([]constraint.Relationship, len(idx))
		for b, j := range idx {
			out[a][b] = rel[i][j]
		}
	}
	return out
}
