#!/bin/sh
# Converts `go test -bench -benchmem` output on stdin into a JSON document
# on stdout: {"benchmarks":[{name, iterations, ns_per_op, bytes_per_op,
# allocs_per_op, extra:{metric:value,...}}, ...]}. Used by the CI bench-smoke
# job to publish BENCH_solver.json.
exec awk '
BEGIN { print "{\"benchmarks\": [" }
/^Benchmark/ {
  name = $1; iters = $2
  ns = "null"; bytes = "null"; allocs = "null"; extra = ""
  for (i = 3; i <= NF; i++) {
    if ($i == "ns/op")        ns = $(i-1)
    else if ($i == "B/op")    bytes = $(i-1)
    else if ($i == "allocs/op") allocs = $(i-1)
    else if ($i !~ /^[0-9.eE+-]+$/ && $(i-1) ~ /^[0-9.eE+-]+$/) {
      gsub(/"/, "", $i)
      extra = extra (extra == "" ? "" : ",") "\"" $i "\":" $(i-1)
    }
  }
  printf "%s  {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s,\"extra\":{%s}}", sep, name, iters, ns, bytes, allocs, extra
  sep = ",\n"
}
END { print "\n]}" }
'
