#!/usr/bin/env bash
# check_metrics.sh — promtool-style validator for a Prometheus text
# exposition read on stdin. Pure awk (no promtool in the CI image), but it
# enforces the parts of the format the scrape pipeline and our tests rely
# on:
#
#   * every sample line parses as `name[{labels}] value`
#   * every sample belongs to a family declared with # HELP and # TYPE
#     (histogram samples fold _bucket/_sum/_count onto their family)
#   * TYPE is counter, gauge, or histogram; no family declared twice
#   * families appear in strictly sorted order (the endpoint's
#     determinism contract: two scrapes are comparable byte-for-byte)
#   * counter/histogram values are non-negative; histogram buckets are
#     cumulative (monotone in le order, ending with +Inf == _count)
#
# Usage: curl -fsS "$url/metrics" | ./.github/check_metrics.sh
set -euo pipefail

awk '
function fail(msg) { printf "check_metrics: line %d: %s: %s\n", NR, msg, $0; bad = 1 }
function family(name) {
  if (name ~ /_bucket$/) { sub(/_bucket$/, "", name) }
  else if (name ~ /_sum$/ && (substr(name, 1, length(name) - 4) in istype) && type[substr(name, 1, length(name) - 4)] == "histogram") { sub(/_sum$/, "", name) }
  else if (name ~ /_count$/ && (substr(name, 1, length(name) - 6) in istype) && type[substr(name, 1, length(name) - 6)] == "histogram") { sub(/_count$/, "", name) }
  return name
}
/^$/ { next }
/^# HELP / {
  name = $3
  if (name in helped) fail("duplicate HELP for " name)
  if (lasthelp != "" && !(lasthelp < name)) fail("families out of order: " lasthelp " then " name)
  lasthelp = name
  helped[name] = 1
  next
}
/^# TYPE / {
  name = $3; t = $4
  if (!(name in helped)) fail("TYPE without preceding HELP for " name)
  if (name in istype) fail("duplicate TYPE for " name)
  if (t != "counter" && t != "gauge" && t != "histogram") fail("bad type " t)
  istype[name] = 1
  type[name] = t
  next
}
/^#/ { fail("unexpected comment form"); next }
{
  if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$/) { fail("unparseable sample"); next }
  name = $1
  sub(/\{.*/, "", name)
  fam = family(name)
  if (!(fam in istype)) { fail("sample for undeclared family " fam); next }
  val = $NF
  if ((type[fam] == "counter" || type[fam] == "histogram") && val + 0 < 0) fail("negative " type[fam] " value")
  if (name ~ /_bucket$/ && fam in istype) {
    if (val + 0 < lastbucket[fam] + 0) fail("histogram buckets not cumulative for " fam)
    lastbucket[fam] = val
    if ($0 ~ /le="\+Inf"/) inf[fam] = val
  }
  if (type[fam] == "histogram" && name == fam "_count") {
    if (!(fam in inf)) fail("histogram " fam " has no +Inf bucket before _count")
    else if (val + 0 != inf[fam] + 0) fail("histogram " fam " +Inf bucket != _count")
  }
  samples[fam]++
}
END {
  for (f in istype) if (!(f in samples)) { printf "check_metrics: family %s declared but has no samples\n", f; bad = 1 }
  if (NR == 0) { print "check_metrics: empty exposition"; bad = 1 }
  if (bad) exit 1
  printf "check_metrics: OK (%d lines)\n", NR
}
'
