#!/usr/bin/env bash
# chaos_smoke.sh — elastic-cluster chaos drill on the real linksynthd
# binary. A 3-node cluster with -replicas 2 takes sustained {base, delta}
# traffic; one node is killed (-9, no graceful leave) mid-traffic and a
# replacement joins via -join. The gate:
#
#   * zero wrong bytes — every response during and after the chaos is
#     byte-identical to a single-node golden run of the same requests
#   * zero re-solves on the survivors for replicated fingerprints — the
#     dead owner's keys are answered warm from replicas (cache hits and
#     locally restored sessions), never cold
#   * bounded tail latency — p99 across the chaos window stays under
#     CHAOS_P99_BUDGET_MS (default 5000; generous, the point is that the
#     successor-chain walk never strands a request on a dead node)
#
# Emits CHAOS.json with the run's numbers for the artifact trail.
#
# Usage: ./.github/chaos_smoke.sh   (from the repository root)
# Env:   LINKSYNTHD=/path/to/binary to skip the build.
set -euo pipefail

BIN="${LINKSYNTHD:-/tmp/linksynthd-chaos}"
if [ ! -x "$BIN" ]; then
  go build -race -o "$BIN" ./cmd/linksynthd
fi

N="${CHAOS_FINGERPRINTS:-6}"      # distinct base fingerprints
ROUNDS="${CHAOS_ROUNDS:-3}"       # chaos traffic rounds over all keys
P99_BUDGET_MS="${CHAOS_P99_BUDGET_MS:-5000}"

work="$(mktemp -d)"
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
}
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 75); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "chaos: node $1 never became healthy" >&2
  return 1
}

metric() { curl -fsS "$1/metrics" | awk -v m="linksynthd_$2" '$1==m {print $2; found=1} END {if (!found) print 0}'; }

wait_metric_at_least() { # url name want
  for _ in $(seq 1 150); do
    if [ "$(metric "$1" "$2")" -ge "$3" ]; then return 0; fi
    sleep 0.2
  done
  echo "chaos: $1 metric $2 never reached $3 (have $(metric "$1" "$2"))" >&2
  return 1
}

mk_inst() { sed "s/\"seed\": 1/\"seed\": $1/" .github/smoke/solve.json; }

post() { # url body-file out-file -> appends latency_ms to $work/latencies
  local t
  t=$(curl -fsS -w '%{time_total}' -o "$3" -X POST -H 'Content-Type: application/json' \
    -d @"$2" "$1/v1/solve")
  awk -v t="$t" 'BEGIN {printf "%d\n", t * 1000}' >> "$work/latencies"
}

# ---------------------------------------------------------------- golden
# A single clusterless node answers every request the chaos run will send;
# its bodies are the byte-identity reference. Fingerprints vary by seed
# (the seed is part of the fingerprint), deltas edit a cell — structure
# preserving, so replicated sessions re-solve them warm.
gport=$(( (RANDOM % 5000) + 21000 ))
gurl="http://127.0.0.1:${gport}"
"$BIN" -addr "127.0.0.1:${gport}" -data-dir "$work/golden" &
gpid=$!; pids+=("$gpid")
wait_healthy "$gurl"
: > "$work/latencies"
for i in $(seq 1 "$N"); do
  mk_inst "$i" > "$work/inst-$i.json"
  curl -fsS -o "$work/golden-base-$i" -X POST -H 'Content-Type: application/json' \
    -d @"$work/inst-$i.json" "$gurl/v1/solve"
  key=$(sed -n 's/.*"key":"\([0-9a-f]\{64\}\)".*/\1/p' "$work/golden-base-$i")
  test -n "$key"
  printf '{"base":"%s","delta":{"r1_edits":[{"row":0,"col":"Rel","val":"Spouse"}]}}' "$key" \
    > "$work/delta-$i.json"
  curl -fsS -o "$work/golden-delta-$i" -X POST -H 'Content-Type: application/json' \
    -d @"$work/delta-$i.json" "$gurl/v1/solve"
done
kill -9 "$gpid"; wait "$gpid" 2>/dev/null || true

# ----------------------------------------------------------- the cluster
p1=$(( gport + 1 )); p2=$(( gport + 2 )); p3=$(( gport + 3 )); p4=$(( gport + 4 ))
n1="http://127.0.0.1:${p1}"; n2="http://127.0.0.1:${p2}"
n3="http://127.0.0.1:${p3}"; n4="http://127.0.0.1:${p4}"
for i in 1 2 3; do
  port_var="p$i"; url_var="n$i"
  "$BIN" -addr "127.0.0.1:${!port_var}" -advertise "${!url_var}" \
    -peers "$n1,$n2,$n3" -replicas 2 -probe-interval 250ms \
    -data-dir "$work/node$i" &
  pids+=("$!")
  eval "pid$i=$!"
done
for url in "$n1" "$n2" "$n3"; do wait_healthy "$url"; done

# Seed: every base and delta once, spread over the entry nodes.
urls=("$n1" "$n2" "$n3")
for i in $(seq 1 "$N"); do
  entry="${urls[$(( i % 3 ))]}"
  post "$entry" "$work/inst-$i.json" "$work/seed-base-$i"
  cmp "$work/seed-base-$i" "$work/golden-base-$i"
  post "$entry" "$work/delta-$i.json" "$work/seed-delta-$i"
  cmp "$work/seed-delta-$i" "$work/golden-delta-$i"
done

# Replication convergence: with 3 nodes and K=2 every node ends up holding
# every entry — N bases plus N patched-delta keys each.
for url in "$n1" "$n2" "$n3"; do
  wait_metric_at_least "$url" cache_entries $(( 2 * N ))
  wait_metric_at_least "$url" store_sessions "$N"
done

# ------------------------------------------------------------- the chaos
# Kill node 1 outright, then keep the same traffic flowing through the
# survivors. Everything must stay byte-identical and warm: the survivors'
# solver never runs again for these fingerprints.
runs2=$(metric "$n2" solver_runs_total); runs3=$(metric "$n3" solver_runs_total)
cold2=$(metric "$n2" incr_cold_solves_total); cold3=$(metric "$n3" incr_cold_solves_total)
kill -9 "$pid1"; wait "$pid1" 2>/dev/null || true

wrong=0
for _ in $(seq 1 "$ROUNDS"); do
  for i in $(seq 1 "$N"); do
    for entry in "$n2" "$n3"; do
      post "$entry" "$work/inst-$i.json" "$work/chaos-base"
      cmp -s "$work/chaos-base" "$work/golden-base-$i" || wrong=$(( wrong + 1 ))
      post "$entry" "$work/delta-$i.json" "$work/chaos-delta"
      cmp -s "$work/chaos-delta" "$work/golden-delta-$i" || wrong=$(( wrong + 1 ))
    done
  done
done
test "$wrong" -eq 0

resolves=$(( $(metric "$n2" solver_runs_total) - runs2 + $(metric "$n3" solver_runs_total) - runs3 ))
colds=$(( $(metric "$n2" incr_cold_solves_total) - cold2 + $(metric "$n3" incr_cold_solves_total) - cold3 ))
test "$resolves" -eq 0   # replicated fingerprints never re-solve
test "$colds" -eq 0
failovers=$(( $(metric "$n2" cluster_failovers_total) + $(metric "$n3" cluster_failovers_total) ))
test "$failovers" -ge 1
restored=$(( $(metric "$n2" store_sessions_restored_total) + $(metric "$n3" store_sessions_restored_total) ))
test "$restored" -ge 1
# The failover left its trail in a survivor's flight recorder.
curl -fsS "$n2/debug/flight" > "$work/flight"
curl -fsS "$n3/debug/flight" >> "$work/flight"
grep -q 'failover: owner' "$work/flight"

# ------------------------------------------------------- the replacement
# A fresh node joins via a survivor — no restarts, no -peers edits — and
# begins serving: old keys byte-identically (routed to the warm
# survivors), and a brand-new fingerprint end to end.
"$BIN" -addr "127.0.0.1:${p4}" -advertise "$n4" -join "$n2" \
  -replicas 2 -probe-interval 250ms -data-dir "$work/node4" &
pids+=("$!")
wait_healthy "$n4"
# The joiner adopted the full member view (3 seeds + itself; the dead node
# is still a member, just down) and sees exactly the two live peers up.
for _ in $(seq 1 50); do
  if [ "$(metric "$n4" cluster_members)" -eq 4 ] && [ "$(metric "$n4" cluster_peers_up)" -eq 2 ]; then break; fi
  sleep 0.2
done
test "$(metric "$n4" cluster_members)" -eq 4
test "$(metric "$n4" cluster_peers_up)" -eq 2
# Gossip carried the join to the second survivor without it being told.
wait_metric_at_least "$n3" cluster_members 4

for i in $(seq 1 "$N"); do
  post "$n4" "$work/inst-$i.json" "$work/join-base"
  cmp "$work/join-base" "$work/golden-base-$i"
done
mk_inst $(( N + 1 )) > "$work/inst-new.json"
post "$n4" "$work/inst-new.json" "$work/new-resp"
grep -q '"key"' "$work/new-resp"

# Every live node still serves valid, deterministically ordered exposition
# carrying the elasticity families.
for url in "$n2" "$n3" "$n4"; do
  curl -fsS -o "$work/scrape" "$url/metrics"
  ./.github/check_metrics.sh < "$work/scrape"
  for fam in cluster_members cluster_membership_epoch cluster_replica_pushed_total \
    cluster_replica_ingested_total cluster_replica_served_total \
    cluster_replica_failed_total cluster_failovers_total \
    cluster_forward_exhausted_total cluster_sessions_migrated_total \
    cluster_probes_stale_total; do
    grep -q "^linksynthd_${fam} " "$work/scrape" \
      || { echo "chaos: $url missing metric $fam" >&2; exit 1; }
  done
done

# ------------------------------------------------------------- the gate
requests=$(wc -l < "$work/latencies")
p99=$(sort -n "$work/latencies" | awk -v n="$requests" 'NR == int(n * 0.99) + ((n * 0.99 == int(n * 0.99)) ? 0 : 1) {print; exit}')
maxms=$(sort -n "$work/latencies" | tail -1)
test "$p99" -le "$P99_BUDGET_MS"

printf '{"nodes":3,"replicas":2,"fingerprints":%d,"rounds":%d,"requests":%d,"wrong_bytes":%d,"survivor_resolves":%d,"survivor_cold_solves":%d,"failovers":%d,"sessions_restored":%d,"p99_ms":%d,"max_ms":%d,"p99_budget_ms":%d}\n' \
  "$N" "$ROUNDS" "$requests" "$wrong" "$resolves" "$colds" "$failovers" "$restored" "$p99" "$maxms" "$P99_BUDGET_MS" > CHAOS.json
cat CHAOS.json
echo "chaos smoke: PASS"
